package generic

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"cuckoohash/internal/workload"
)

func TestStringKeys(t *testing.T) {
	tab := MustNew[string, string](Config{})
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if err := tab.Insert(k, fmt.Sprintf("val-%d", i)); err != nil {
			t.Fatalf("Insert(%q): %v", k, err)
		}
	}
	if tab.Len() != 5000 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%d", i)
		v, ok := tab.Get(k)
		if !ok || v != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(%q) = %q,%v", k, v, ok)
		}
	}
	if _, ok := tab.Get("nope"); ok {
		t.Fatal("found absent key")
	}
	if err := tab.Insert("key-1", "x"); !errors.Is(err, ErrExists) {
		t.Fatalf("dup insert: %v", err)
	}
	if err := tab.Upsert("key-1", "x"); err != nil {
		t.Fatal(err)
	}
	if v, _ := tab.Get("key-1"); v != "x" {
		t.Fatal("upsert failed")
	}
	if !tab.Delete("key-1") || tab.Delete("key-1") {
		t.Fatal("delete semantics")
	}
}

func TestStructValues(t *testing.T) {
	type coord struct{ X, Y int }
	tab := MustNew[coord, []string](Config{})
	if err := tab.Insert(coord{1, 2}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	v, ok := tab.Get(coord{1, 2})
	if !ok || len(v) != 2 || v[0] != "a" {
		t.Fatalf("Get = %v,%v", v, ok)
	}
}

func TestAutoGrow(t *testing.T) {
	tab := MustNew[uint64, uint64](Config{InitialCapacity: 64})
	const n = 100000
	for k := uint64(0); k < n; k++ {
		if err := tab.Insert(k+1, k); err != nil {
			t.Fatalf("Insert(%d): %v", k+1, err)
		}
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d", tab.Len())
	}
	if tab.Cap() < n {
		t.Fatalf("Cap = %d, did not grow", tab.Cap())
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := tab.Get(k + 1); !ok || v != k {
			t.Fatalf("Get(%d) = %d,%v", k+1, v, ok)
		}
	}
}

func TestDisableAutoGrow(t *testing.T) {
	tab := MustNew[uint64, uint64](Config{InitialCapacity: 64, DisableAutoGrow: true})
	var err error
	for k := uint64(1); ; k++ {
		if err = tab.Insert(k, k); err != nil {
			break
		}
		if k > 1000 {
			t.Fatal("fixed table never filled")
		}
	}
	if !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentMixedGeneric(t *testing.T) {
	tab := MustNew[string, uint64](Config{InitialCapacity: 1 << 10})
	const threads = 8
	const ops = 5000
	oracles := make([]map[string]uint64, threads)
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			oracle := make(map[string]uint64)
			oracles[th] = oracle
			rnd := workload.NewRand(uint64(th) + 3)
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("t%d-%d", th, rnd.Intn(2000))
				switch rnd.Intn(10) {
				case 0, 1, 2, 3, 4:
					v := rnd.Next()
					if err := tab.Upsert(k, v); err != nil {
						t.Errorf("Upsert: %v", err)
						return
					}
					oracle[k] = v
				case 5:
					got := tab.Delete(k)
					if _, want := oracle[k]; got != want {
						t.Errorf("Delete(%q) = %v", k, got)
						return
					}
					delete(oracle, k)
				default:
					v, ok := tab.Get(k)
					wv, wok := oracle[k]
					if ok != wok || (ok && v != wv) {
						t.Errorf("Get(%q) = %d,%v want %d,%v", k, v, ok, wv, wok)
						return
					}
				}
			}
		}(th)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	var want uint64
	for th := 0; th < threads; th++ {
		want += uint64(len(oracles[th]))
		for k, v := range oracles[th] {
			if got, ok := tab.Get(k); !ok || got != v {
				t.Fatalf("final Get(%q) = %d,%v want %d,true", k, got, ok, v)
			}
		}
	}
	if got := tab.Len(); got != want {
		t.Fatalf("Len = %d want %d", got, want)
	}
}

func TestConcurrentInsertWithAutoGrow(t *testing.T) {
	tab := MustNew[uint64, uint64](Config{InitialCapacity: 128})
	const threads = 8
	const per = 5000
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			base := uint64(th+1) << 32
			for i := uint64(0); i < per; i++ {
				if err := tab.Insert(base|i, i); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(th)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if tab.Len() != threads*per {
		t.Fatalf("Len = %d want %d", tab.Len(), threads*per)
	}
	for th := 0; th < threads; th++ {
		base := uint64(th+1) << 32
		for i := uint64(0); i < per; i++ {
			if v, ok := tab.Get(base | i); !ok || v != i {
				t.Fatalf("Get(%d) = %d,%v", base|i, v, ok)
			}
		}
	}
}

func TestRangeGeneric(t *testing.T) {
	tab := MustNew[int, int](Config{})
	want := map[int]int{}
	for i := 0; i < 300; i++ {
		want[i] = i * 2
		if err := tab.Insert(i, i*2); err != nil {
			t.Fatal(err)
		}
	}
	got := map[int]int{}
	tab.Range(func(k, v int) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%d] = %d want %d", k, got[k], v)
		}
	}
}
