package generic

import "iter"

// All returns an iterator over the table's key/value pairs, in the style of
// maps.All. Like Range (which it wraps) it holds the full-table lock while
// iterating: keep loop bodies short, and do not call table methods from
// inside the loop.
func (t *Table[K, V]) All() iter.Seq2[K, V] {
	return func(yield func(K, V) bool) {
		t.Range(yield)
	}
}

// Keys returns a snapshot slice of every key. Unlike All, the snapshot is
// taken under the lock but consumed after its release, so the caller may
// freely call table methods while processing it.
func (t *Table[K, V]) Keys() []K {
	keys := make([]K, 0, t.Len())
	t.Range(func(k K, _ V) bool {
		keys = append(keys, k)
		return true
	})
	return keys
}

// Items returns a snapshot of every key/value pair.
func (t *Table[K, V]) Items() map[K]V {
	m := make(map[K]V, t.Len())
	t.Range(func(k K, v V) bool {
		m[k] = v
		return true
	})
	return m
}

// Clear removes every entry, holding the full-table lock for the duration.
// The capacity is retained.
func (t *Table[K, V]) Clear() {
	t.growMu.Lock()
	defer t.growMu.Unlock()
	t.locks.LockAll()
	defer t.locks.UnlockAll()
	arr := t.arr.Load()
	var zeroK K
	var zeroV V
	for b := uint64(0); b < arr.buckets; b++ {
		occ := arr.occ[b]
		for s := 0; occ != 0; s, occ = s+1, occ>>1 {
			if occ&1 == 0 {
				continue
			}
			i := b*t.assoc + uint64(s)
			arr.keys[i] = zeroK // release references for the GC
			arr.vals[i] = zeroV
		}
		arr.occ[b] = 0
	}
	for i := range t.size.shards {
		t.size.shards[i].v.Store(0)
	}
}
