package generic

import "iter"

// All returns an iterator over the table's key/value pairs, in the style
// of maps.All. Like Range (which it wraps) it walks the table one stripe
// at a time — concurrent operations keep running, blocking only on the
// bucket currently being copied — but it holds growMu throughout, so do
// not call table methods from inside the loop.
func (t *Table[K, V]) All() iter.Seq2[K, V] {
	return func(yield func(K, V) bool) {
		t.Range(yield)
	}
}

// Keys returns a snapshot slice of every key. Unlike All, the snapshot
// is consumed after the walk's locks are released, so the caller may
// freely call table methods while processing it.
func (t *Table[K, V]) Keys() []K {
	keys := make([]K, 0, t.Len())
	t.Range(func(k K, _ V) bool {
		keys = append(keys, k)
		return true
	})
	return keys
}

// Items returns a snapshot of every key/value pair.
func (t *Table[K, V]) Items() map[K]V {
	m := make(map[K]V, t.Len())
	t.Range(func(k K, v V) bool {
		m[k] = v
		return true
	})
	return m
}

// Clear removes every entry. Like Range it first completes any
// in-flight migration, then empties the live buckets one stripe at a
// time; concurrent operations interleave with it, so an entry written
// while Clear runs may survive. The capacity is retained.
func (t *Table[K, V]) Clear() {
	t.growMu.Lock()
	defer t.growMu.Unlock()
	t.drainAllLocked()
	st := t.loadState()
	for b := uint64(0); b < st.live.buckets; b++ {
		l := t.locks.IndexFor(b)
		t.locks.Lock(l)
		if n := clearBucket(st.live, b, t.assoc); n != 0 {
			t.size.add(b, -n)
		}
		t.locks.Unlock(l)
	}
}

// clearBucket empties bucket b and returns how many entries it held;
// caller holds the bucket's stripe.
func clearBucket[K comparable, V any](arr *tArrays[K, V], b, assoc uint64) int64 {
	var zeroK K
	var zeroV V
	var n int64
	occ := arr.occ[b]
	for s := 0; occ != 0; s, occ = s+1, occ>>1 {
		if occ&1 == 0 {
			continue
		}
		i := b*assoc + uint64(s)
		arr.keys[i] = zeroK // release references for the GC
		arr.vals[i] = zeroV
		n++
	}
	arr.occ[b] = 0
	return n
}
