package generic

import (
	"errors"
	"sync"
	"testing"
)

// TestInsertIfAbsentAtomicity: when many goroutines race to Insert the same
// key, exactly one must win and everyone else must observe ErrExists — the
// property the dedup example depends on.
func TestInsertIfAbsentAtomicity(t *testing.T) {
	tab := MustNew[uint64, int](Config{InitialCapacity: 1 << 10})
	const racers = 8
	const keys = 2000
	winners := make([][]uint64, racers)
	var wg sync.WaitGroup
	for g := 0; g < racers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := uint64(1); k <= keys; k++ {
				err := tab.Insert(k, g)
				switch {
				case err == nil:
					winners[g] = append(winners[g], k)
				case errors.Is(err, ErrExists):
				default:
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	var totalWins int
	for _, w := range winners {
		totalWins += len(w)
	}
	if totalWins != keys {
		t.Fatalf("%d wins for %d keys: insert-if-absent not atomic", totalWins, keys)
	}
	// The stored value must match the recorded winner.
	for g, w := range winners {
		for _, k := range w {
			if v, ok := tab.Get(k); !ok || v != g {
				t.Fatalf("key %d: value %d,%v but goroutine %d won", k, v, ok, g)
			}
		}
	}
}

// TestGetWhileGrowing hammers reads across automatic resizes.
func TestGetWhileGrowing(t *testing.T) {
	tab := MustNew[uint64, uint64](Config{InitialCapacity: 64})
	// Stable witnesses.
	for k := uint64(1); k <= 50; k++ {
		if err := tab.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(n%50) + 1
				if v, ok := tab.Get(k); !ok || v != k {
					t.Errorf("witness %d = %d,%v during growth", k, v, ok)
					return
				}
			}
		}()
	}
	for k := uint64(1000); k < 20000; k++ {
		if err := tab.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()
}
