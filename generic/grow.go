package generic

import "sync/atomic"

// The stop-the-world grow that used to live here (LockAll + full rehash)
// is gone: resizing is now the incremental two-generation migration in
// migrate.go. This file keeps the size counter it shared.

// shardedCounter mirrors the internal tables' padded per-shard size
// counters (principle P1).
type shardedCounter struct {
	shards [64]paddedInt64
}

type paddedInt64 struct {
	v atomic.Int64
	_ [120]byte
}

func (c *shardedCounter) add(bucket uint64, delta int64) {
	c.shards[bucket&63].v.Add(delta)
}

func (c *shardedCounter) total() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}
