package generic

import "sync/atomic"

// shardedCounter mirrors the internal tables' padded per-shard size
// counters (principle P1).
type shardedCounter struct {
	shards [64]paddedInt64
}

type paddedInt64 struct {
	v atomic.Int64
	_ [120]byte
}

func (c *shardedCounter) add(bucket uint64, delta int64) {
	c.shards[bucket&63].v.Add(delta)
}

func (c *shardedCounter) total() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// grow doubles the bucket count and rehashes, holding every stripe. This is
// the automatic resizing §7 credits to libcuckoo.
func (t *Table[K, V]) grow() {
	t.growMu.Lock()
	defer t.growMu.Unlock()

	old := t.arr.Load()
	newBuckets := old.buckets * 2
	for {
		next := t.newArrays(newBuckets)
		t.locks.LockAll()
		ok := t.rehashInto(old, next)
		if ok {
			t.arr.Store(next)
		}
		t.locks.UnlockAll()
		if ok {
			t.growCount.Add(1)
			return
		}
		newBuckets *= 2
	}
}

// rehashInto replays every entry of old into next; caller holds all
// stripes, so placement runs without locks.
func (t *Table[K, V]) rehashInto(old, next *tArrays[K, V]) bool {
	for b := uint64(0); b < old.buckets; b++ {
		occ := old.occ[b]
		for s := 0; occ != 0; s, occ = s+1, occ>>1 {
			if occ&1 == 0 {
				continue
			}
			i := b*t.assoc + uint64(s)
			if !t.placeDirect(next, old.keys[i], old.vals[i]) {
				return false
			}
		}
	}
	return true
}

// placeDirect inserts assuming exclusive access.
func (t *Table[K, V]) placeDirect(arr *tArrays[K, V], key K, val V) bool {
	h := t.hash(key)
	b1, b2 := t.twoBuckets(h, arr.buckets)
	for _, b := range [2]uint64{b1, b2} {
		if s, ok := freeSlot(arr.occ[b], int(t.assoc)); ok {
			t.placeNoCount(arr, b, s, key, val)
			return true
		}
	}
	path, ok := t.searchDirect(arr, b1, b2)
	if !ok {
		return false
	}
	for i := len(path) - 2; i >= 0; i-- {
		src, dst := path[i], path[i+1]
		si := src.bucket*t.assoc + uint64(src.slot)
		di := dst.bucket*t.assoc + uint64(dst.slot)
		arr.keys[di] = arr.keys[si]
		arr.vals[di] = arr.vals[si]
		arr.occ[dst.bucket] |= 1 << uint(dst.slot)
		arr.occ[src.bucket] &^= 1 << uint(src.slot)
	}
	t.placeNoCount(arr, path[0].bucket, path[0].slot, key, val)
	return true
}

func (t *Table[K, V]) placeNoCount(arr *tArrays[K, V], b uint64, s int, key K, val V) {
	i := b*t.assoc + uint64(s)
	arr.keys[i] = key
	arr.vals[i] = val
	arr.occ[b] |= 1 << uint(s)
}

// searchDirect is BFS without locks, for exclusive-access rehashing.
func (t *Table[K, V]) searchDirect(arr *tArrays[K, V], b1, b2 uint64) ([]pathEntry[K], bool) {
	assoc := int(t.assoc)
	budget := t.cfg.MaxSearchSlots
	nodes := make([]bfsNode[K], 0, budget+2)
	nodes = append(nodes,
		bfsNode[K]{bucket: b1, parent: -1},
		bfsNode[K]{bucket: b2, parent: -1},
	)
	slotsExamined := 0
	for qi := 0; qi < len(nodes) && slotsExamined < budget; qi++ {
		n := &nodes[qi]
		slotsExamined += assoc
		if s, ok := freeSlot(arr.occ[n.bucket], assoc); ok {
			return t.buildPath(nodes, qi, s), true
		}
		if len(nodes)+assoc > cap(nodes) {
			continue
		}
		base := n.bucket * t.assoc
		for s := 0; s < assoc; s++ {
			k := arr.keys[base+uint64(s)]
			alt := t.altBucket(t.hash(k), arr.buckets, n.bucket)
			nodes = append(nodes, bfsNode[K]{
				bucket:    alt,
				kickedKey: k,
				parent:    int32(qi),
				slotInPar: int8(s),
			})
		}
	}
	return nil, false
}
