// Package generic provides a general-purpose concurrent cuckoo hash table
// for arbitrary key and value types — the libcuckoo-style variant the paper
// describes in §7: "supports variable length key value pairs of arbitrary
// types, including those with pointers or strings, provides iterators, and
// dynamically resizes itself as it fills. The price of this generality is
// that it uses locks for reads as well as writes, so that pointer-valued
// items can be safely dereferenced, at the cost of a 5-20% slowdown."
//
// The write path is the same BFS + lock-after-discovery algorithm as the
// specialized cuckoohash.Map; reads take the (very short) bucket-pair lock
// instead of running optimistically, because values of arbitrary type
// cannot be copied tear-free without it. Resizing is incremental: a grow
// publishes a doubled live generation next to the old one and drains it a
// bounded batch of buckets at a time (migrate.go), so no operation ever
// pauses for a full-table rehash and nothing outside tests takes the
// whole stripe table.
package generic

import (
	"errors"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"cuckoohash/internal/spinlock"
)

// ErrFull is returned by Insert when no slot is reachable and automatic
// resizing is disabled (or capped by MaxCapacity).
var ErrFull = errors.New("generic: table is too full")

// ErrExists is returned by Insert when the key is already present.
var ErrExists = errors.New("generic: key already exists")

// Config configures a Table.
type Config struct {
	// InitialCapacity is the initial slot count (default 1024).
	InitialCapacity uint64
	// MaxCapacity, when nonzero, bounds put-driven automatic growth: a
	// grow that would exceed it fails and Insert returns ErrFull, like a
	// fixed-size table at its limit. Migration-escalation grows may
	// transiently exceed the bound to guarantee drains terminate.
	MaxCapacity uint64
	// Associativity is the bucket width (default 4, libcuckoo's default).
	Associativity int
	// LockStripes is the striped-lock table size (default 4096).
	LockStripes int
	// MaxSearchSlots is the insert search budget (default 2000).
	MaxSearchSlots int
	// DisableAutoGrow turns off resize-on-full; Insert then returns
	// ErrFull like the fixed-size tables.
	DisableAutoGrow bool
	// MigrateBatch is how many old-generation buckets each mutating
	// operation drains while a migration is in flight (default 2;
	// negative disables per-operation draining, leaving migration to
	// the background sweeper and explicit MigrateBatch calls).
	MigrateBatch int
	// DisableBackgroundSweep stops grows from spawning the background
	// drain goroutine; migration then advances only on mutating
	// operations and explicit MigrateBatch calls. Useful for
	// deterministic tests.
	DisableBackgroundSweep bool
	// OnGrowEvent, when non-nil, is called at every grow state change
	// (start and finish) from the goroutine driving the transition. It
	// must be fast and must not call back into the table.
	OnGrowEvent func(GrowEvent)
}

func (c *Config) setDefaults() {
	if c.InitialCapacity == 0 {
		c.InitialCapacity = 1024
	}
	if c.Associativity == 0 {
		c.Associativity = 4
	}
	if c.LockStripes == 0 {
		c.LockStripes = 4096
	}
	if c.MaxSearchSlots == 0 {
		c.MaxSearchSlots = 2000
	}
	if c.MigrateBatch == 0 {
		c.MigrateBatch = 2
	}
}

// Table is a concurrent cuckoo hash table mapping K to V. All methods are
// safe for concurrent use.
type Table[K comparable, V any] struct {
	cfg    Config
	seed   maphash.Seed
	assoc  uint64
	locks  *spinlock.Stripe
	growMu sync.Mutex // serializes generation-set changes and full walks
	state  atomic.Pointer[genState[K, V]]
	epoch  atomic.Uint64 // bumped on every generation-set change
	size   shardedCounter

	stats           tableStats
	growCount       atomic.Uint64
	migratedBuckets atomic.Uint64
}

type tArrays[K comparable, V any] struct {
	buckets uint64
	keys    []K
	vals    []V
	occ     []uint32 // guarded by the bucket's lock stripe
}

// New creates a Table.
func New[K comparable, V any](cfg Config) (*Table[K, V], error) {
	cfg.setDefaults()
	if cfg.Associativity < 1 || cfg.Associativity > 32 {
		return nil, errors.New("generic: Associativity must be in [1,32]")
	}
	if cfg.LockStripes&(cfg.LockStripes-1) != 0 {
		return nil, errors.New("generic: LockStripes must be a power of two")
	}
	if cfg.MaxSearchSlots < 2*cfg.Associativity {
		return nil, errors.New("generic: MaxSearchSlots too small")
	}
	if cfg.MaxCapacity != 0 && cfg.MaxCapacity < cfg.InitialCapacity {
		return nil, errors.New("generic: MaxCapacity below InitialCapacity")
	}
	t := &Table[K, V]{
		cfg:   cfg,
		seed:  maphash.MakeSeed(),
		assoc: uint64(cfg.Associativity),
		locks: spinlock.NewStripe(cfg.LockStripes),
	}
	buckets := uint64(2)
	for buckets*t.assoc < cfg.InitialCapacity {
		buckets <<= 1
	}
	t.state.Store(&genState[K, V]{live: t.newArrays(buckets)})
	return t, nil
}

// MustNew panics on configuration errors.
func MustNew[K comparable, V any](cfg Config) *Table[K, V] {
	t, err := New[K, V](cfg)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Table[K, V]) newArrays(buckets uint64) *tArrays[K, V] {
	return &tArrays[K, V]{
		buckets: buckets,
		keys:    make([]K, buckets*t.assoc),
		vals:    make([]V, buckets*t.assoc),
		occ:     make([]uint32, buckets),
	}
}

// Len returns the number of stored keys.
func (t *Table[K, V]) Len() uint64 { return uint64(t.size.total()) }

// Cap returns the live generation's slot count. During a migration the
// table transiently holds the draining generations' arrays too, but new
// values only ever land in the live slots.
func (t *Table[K, V]) Cap() uint64 { return t.loadState().live.buckets * t.assoc }

// LoadFactor returns Len/Cap.
func (t *Table[K, V]) LoadFactor() float64 { return float64(t.Len()) / float64(t.Cap()) }

// LockStats returns the stripe table's lock-contention counters.
func (t *Table[K, V]) LockStats() spinlock.StripeStats { return t.locks.Stats() }

func (t *Table[K, V]) hash(key K) uint64 {
	return maphash.Comparable(t.seed, key)
}

func (t *Table[K, V]) twoBuckets(h, buckets uint64) (uint64, uint64) {
	mask := buckets - 1
	b1 := h & mask
	b2 := (h >> 32) * 0xC2B2AE3D27D4EB4F >> 32 & mask
	if b2 == b1 {
		b2 = (b2 ^ 1) & mask
	}
	return b1, b2
}

func (t *Table[K, V]) altBucket(h, buckets, b uint64) uint64 {
	b1, b2 := t.twoBuckets(h, buckets)
	if b == b1 {
		return b2
	}
	return b1
}

// lockPair acquires the stripes of b1 and b2 in order and returns them.
func (t *Table[K, V]) lockPair(b1, b2 uint64) (uint64, uint64) {
	l1, l2 := t.locks.IndexFor(b1), t.locks.IndexFor(b2)
	t.locks.LockPair(l1, l2)
	return l1, l2
}

// lockAllGens acquires, in globally ascending order, the stripes of the
// key's candidate buckets in every generation of st: the two live
// candidates plus two per draining generation. buf is caller scratch so
// the common cases stay allocation-free.
func (t *Table[K, V]) lockAllGens(st *genState[K, V], h uint64, buf []uint64) []uint64 {
	b1, b2 := t.twoBuckets(h, st.live.buckets)
	//lint:allow cuckoovet:allocfree appends fill the caller's fixed 8-slot scratch: live pair plus two per draining generation spills only past three concurrent generations
	buf = append(buf, t.locks.IndexFor(b1), t.locks.IndexFor(b2))
	for _, g := range st.olds {
		ob1, ob2 := t.twoBuckets(h, g.arr.buckets)
		//lint:allow cuckoovet:allocfree appends fill the caller's fixed 8-slot scratch: live pair plus two per draining generation spills only past three concurrent generations
		buf = append(buf, t.locks.IndexFor(ob1), t.locks.IndexFor(ob2))
	}
	return t.locks.LockOrdered(buf)
}

// Get returns the value for key. The candidate buckets' locks are held
// just long enough to copy the value out (§7: locked reads make
// pointer-valued items safe to hand to the caller). While a migration is
// in flight the old generations are consulted first — a key lives in
// exactly one generation at a time.
//
//cuckoo:hotpath the table read path (§7 locked reads)
func (t *Table[K, V]) Get(key K) (V, bool) {
	h := t.hash(key)
	var lockBuf [8]uint64
	for {
		st := t.loadState()
		locked := t.lockAllGens(st, h, lockBuf[:0])
		if !t.stateValid(st) {
			t.locks.UnlockOrdered(locked)
			continue
		}
		for _, g := range st.olds {
			ob1, ob2 := t.twoBuckets(h, g.arr.buckets)
			for _, b := range [2]uint64{ob1, ob2} {
				if i, ok := t.find(g.arr, b, key); ok {
					v := g.arr.vals[i]
					t.locks.UnlockOrdered(locked)
					return v, true
				}
			}
		}
		b1, b2 := t.twoBuckets(h, st.live.buckets)
		for _, b := range [2]uint64{b1, b2} {
			if i, ok := t.find(st.live, b, key); ok {
				v := st.live.vals[i]
				t.locks.UnlockOrdered(locked)
				return v, true
			}
		}
		t.locks.UnlockOrdered(locked)
		var zero V
		return zero, false
	}
}

// find scans bucket b for key; caller holds its stripe.
func (t *Table[K, V]) find(arr *tArrays[K, V], b uint64, key K) (uint64, bool) {
	occ := arr.occ[b]
	base := b * t.assoc
	for s := 0; occ != 0; s, occ = s+1, occ>>1 {
		if occ&1 != 0 && arr.keys[base+uint64(s)] == key {
			return base + uint64(s), true
		}
	}
	return 0, false
}

// Insert adds key, returning ErrExists if present. With auto-grow enabled
// (the default) it resizes instead of returning ErrFull.
func (t *Table[K, V]) Insert(key K, val V) error {
	return t.put(key, val, false)
}

// Upsert inserts or overwrites key.
func (t *Table[K, V]) Upsert(key K, val V) error {
	return t.put(key, val, true)
}

// put is the shared write loop behind Insert and Upsert: the in-place
// fast path, then BFS path search (the audited slow path), growing and
// draining as needed.
//
//cuckoo:hotpath the table write path; search/grow/migrate are the audited slow paths
func (t *Table[K, V]) put(key K, val V, overwrite bool) error {
	for {
		observed := t.loadState().live.buckets
		err := t.tryPut(key, val, overwrite)
		if err == ErrFull && !t.cfg.DisableAutoGrow {
			if t.grow(observed) {
				continue
			}
		}
		t.migrateStep()
		return err
	}
}

func (t *Table[K, V]) tryPut(key K, val V, overwrite bool) error {
	h := t.hash(key)
	for {
		st := t.loadState()
		b1, b2 := t.twoBuckets(h, st.live.buckets)

		switch t.attempt(st, h, b1, b2, key, val, overwrite, -1) {
		case putDone:
			return nil
		case putExists:
			return ErrExists
		case putStale:
			continue
		case putNoSpace:
		}

		path, ok := t.search(st, b1, b2)
		if !ok {
			// Re-check under the lock before giving up.
			switch t.attempt(st, h, b1, b2, key, val, overwrite, -1) {
			case putDone:
				return nil
			case putExists:
				return ErrExists
			case putStale:
				continue
			}
			return ErrFull
		}
		t.stats.observePath(b1, uint64(len(path)-1))
		switch t.execute(st, path, h, b1, b2, key, val, overwrite) {
		case putDone:
			return nil
		case putExists:
			return ErrExists
		}
		// Path invalidated or generations swapped (Eq. 1); retry.
		t.stats.restarts.add(b1, 1)
	}
}

type putResult int

const (
	putDone putResult = iota
	putExists
	putNoSpace
	putStale
)

// attempt tries to complete the put under the key's full cross-
// generation lock set. A key found in the live arrays is updated in
// place; a key found in a draining generation is folded forward — the
// new value lands in a live slot and the old slot is cleared — so
// writers always land in the live generation. reqSlot >= 0 pins the
// insert to that slot of b1 (the head of a discovered cuckoo path).
func (t *Table[K, V]) attempt(st *genState[K, V], h, b1, b2 uint64, key K, val V, overwrite bool, reqSlot int) putResult {
	var lockBuf [8]uint64
	locked := t.lockAllGens(st, h, lockBuf[:0])
	defer t.locks.UnlockOrdered(locked)
	if !t.stateValid(st) {
		return putStale
	}
	live := st.live
	for _, b := range [2]uint64{b1, b2} {
		if i, ok := t.find(live, b, key); ok {
			if !overwrite {
				return putExists
			}
			live.vals[i] = val
			return putDone
		}
	}
	for _, g := range st.olds {
		ob1, ob2 := t.twoBuckets(h, g.arr.buckets)
		for _, ob := range [2]uint64{ob1, ob2} {
			i, ok := t.find(g.arr, ob, key)
			if !ok {
				continue
			}
			if !overwrite {
				return putExists
			}
			// Fold the entry forward into a live slot.
			if s, ok := t.liveSlotFor(live, b1, b2, reqSlot); ok {
				t.placeNoCount(live, s.bucket, s.slot, key, val)
				t.clearSlot(g.arr, ob, i)
				return putDone
			}
			return putNoSpace
		}
	}
	if reqSlot >= 0 {
		if live.occ[b1]&(1<<uint(reqSlot)) != 0 {
			return putNoSpace
		}
		t.place(live, b1, reqSlot, key, val)
		return putDone
	}
	for _, b := range [2]uint64{b1, b2} {
		if s, ok := freeSlot(live.occ[b], int(t.assoc)); ok {
			t.place(live, b, s, key, val)
			return putDone
		}
	}
	return putNoSpace
}

// liveTarget names a (bucket, slot) destination in the live arrays.
type liveTarget struct {
	bucket uint64
	slot   int
}

// liveSlotFor picks the destination slot for a value landing in the
// live generation: the pinned path-head slot when reqSlot >= 0,
// otherwise the first free slot of either candidate. Caller holds the
// stripes.
func (t *Table[K, V]) liveSlotFor(live *tArrays[K, V], b1, b2 uint64, reqSlot int) (liveTarget, bool) {
	if reqSlot >= 0 {
		if live.occ[b1]&(1<<uint(reqSlot)) != 0 {
			return liveTarget{}, false
		}
		return liveTarget{bucket: b1, slot: reqSlot}, true
	}
	for _, b := range [2]uint64{b1, b2} {
		if s, ok := freeSlot(live.occ[b], int(t.assoc)); ok {
			return liveTarget{bucket: b, slot: s}, true
		}
	}
	return liveTarget{}, false
}

func (t *Table[K, V]) place(arr *tArrays[K, V], b uint64, s int, key K, val V) {
	i := b*t.assoc + uint64(s)
	arr.keys[i] = key
	arr.vals[i] = val
	arr.occ[b] |= 1 << uint(s)
	t.size.add(b, 1)
}

func (t *Table[K, V]) placeNoCount(arr *tArrays[K, V], b uint64, s int, key K, val V) {
	i := b*t.assoc + uint64(s)
	arr.keys[i] = key
	arr.vals[i] = val
	arr.occ[b] |= 1 << uint(s)
}

// clearSlot empties slot i of bucket b, releasing references for the
// GC; caller holds the bucket's stripe and accounts for size itself.
func (t *Table[K, V]) clearSlot(arr *tArrays[K, V], b, i uint64) {
	var zeroK K
	var zeroV V
	arr.keys[i] = zeroK
	arr.vals[i] = zeroV
	arr.occ[b] &^= 1 << uint(i-b*t.assoc)
}

func freeSlot(occ uint32, assoc int) (int, bool) {
	for s := 0; s < assoc; s++ {
		if occ&(1<<uint(s)) == 0 {
			return s, true
		}
	}
	return 0, false
}

// Delete removes key, reporting whether it was present. The removal may
// land in either generation — clearing an old-generation slot is the
// same write migration itself performs.
func (t *Table[K, V]) Delete(key K) bool {
	h := t.hash(key)
	var lockBuf [8]uint64
	for {
		st := t.loadState()
		locked := t.lockAllGens(st, h, lockBuf[:0])
		if !t.stateValid(st) {
			t.locks.UnlockOrdered(locked)
			continue
		}
		deleted := false
		b1, b2 := t.twoBuckets(h, st.live.buckets)
		for _, b := range [2]uint64{b1, b2} {
			if i, ok := t.find(st.live, b, key); ok {
				t.clearSlot(st.live, b, i)
				t.size.add(b, -1)
				deleted = true
				break
			}
		}
		if !deleted {
			for _, g := range st.olds {
				ob1, ob2 := t.twoBuckets(h, g.arr.buckets)
				for _, b := range [2]uint64{ob1, ob2} {
					if i, ok := t.find(g.arr, b, key); ok {
						t.clearSlot(g.arr, b, i)
						t.size.add(b, -1)
						deleted = true
						break
					}
				}
				if deleted {
					break
				}
			}
		}
		t.locks.UnlockOrdered(locked)
		if deleted {
			t.migrateStep()
		}
		return deleted
	}
}

// Range calls fn for every key/value pair until fn returns false. It
// first completes any in-flight migration, then walks the live buckets
// one stripe at a time: a concurrent writer blocks only while its
// bucket is being copied, never on the whole table. growMu is held for
// the walk, so generations cannot change mid-iteration (a put that
// needs to grow waits), but per-key operations proceed. The iteration
// is weakly consistent: entries written or removed while Range runs may
// or may not be observed. fn must not call methods of t.
func (t *Table[K, V]) Range(fn func(key K, val V) bool) {
	t.growMu.Lock()
	defer t.growMu.Unlock()
	t.drainAllLocked()
	st := t.loadState()
	keys := make([]K, 0, t.assoc)
	vals := make([]V, 0, t.assoc)
	for b := uint64(0); b < st.live.buckets; b++ {
		l := t.locks.IndexFor(b)
		t.locks.Lock(l)
		keys, vals = copyBucket(st.live, b, t.assoc, keys[:0], vals[:0])
		t.locks.Unlock(l)
		for i := range keys {
			if !fn(keys[i], vals[i]) {
				return
			}
		}
	}
}

// copyBucket appends bucket b's occupied entries to keys/vals; caller
// holds the bucket's stripe.
func copyBucket[K comparable, V any](arr *tArrays[K, V], b, assoc uint64, keys []K, vals []V) ([]K, []V) {
	occ := arr.occ[b]
	base := b * assoc
	for s := 0; occ != 0; s, occ = s+1, occ>>1 {
		if occ&1 == 0 {
			continue
		}
		keys = append(keys, arr.keys[base+uint64(s)])
		vals = append(vals, arr.vals[base+uint64(s)])
	}
	return keys, vals
}
