// Package generic provides a general-purpose concurrent cuckoo hash table
// for arbitrary key and value types — the libcuckoo-style variant the paper
// describes in §7: "supports variable length key value pairs of arbitrary
// types, including those with pointers or strings, provides iterators, and
// dynamically resizes itself as it fills. The price of this generality is
// that it uses locks for reads as well as writes, so that pointer-valued
// items can be safely dereferenced, at the cost of a 5-20% slowdown."
//
// The write path is the same BFS + lock-after-discovery algorithm as the
// specialized cuckoohash.Map; reads take the (very short) bucket-pair lock
// instead of running optimistically, because values of arbitrary type
// cannot be copied tear-free without it.
package generic

import (
	"errors"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"cuckoohash/internal/spinlock"
)

// ErrFull is returned by Insert when no slot is reachable and automatic
// resizing is disabled.
var ErrFull = errors.New("generic: table is too full")

// ErrExists is returned by Insert when the key is already present.
var ErrExists = errors.New("generic: key already exists")

// Config configures a Table.
type Config struct {
	// InitialCapacity is the initial slot count (default 1024).
	InitialCapacity uint64
	// Associativity is the bucket width (default 4, libcuckoo's default).
	Associativity int
	// LockStripes is the striped-lock table size (default 4096).
	LockStripes int
	// MaxSearchSlots is the insert search budget (default 2000).
	MaxSearchSlots int
	// DisableAutoGrow turns off resize-on-full; Insert then returns
	// ErrFull like the fixed-size tables.
	DisableAutoGrow bool
}

func (c *Config) setDefaults() {
	if c.InitialCapacity == 0 {
		c.InitialCapacity = 1024
	}
	if c.Associativity == 0 {
		c.Associativity = 4
	}
	if c.LockStripes == 0 {
		c.LockStripes = 4096
	}
	if c.MaxSearchSlots == 0 {
		c.MaxSearchSlots = 2000
	}
}

// Table is a concurrent cuckoo hash table mapping K to V. All methods are
// safe for concurrent use.
type Table[K comparable, V any] struct {
	cfg    Config
	seed   maphash.Seed
	assoc  uint64
	locks  *spinlock.Stripe
	growMu sync.Mutex
	arr    atomic.Pointer[tArrays[K, V]]
	size   shardedCounter

	stats     tableStats
	growCount atomic.Uint64
}

type tArrays[K comparable, V any] struct {
	buckets uint64
	keys    []K
	vals    []V
	occ     []uint32 // guarded by the bucket's lock stripe
}

// New creates a Table.
func New[K comparable, V any](cfg Config) (*Table[K, V], error) {
	cfg.setDefaults()
	if cfg.Associativity < 1 || cfg.Associativity > 32 {
		return nil, errors.New("generic: Associativity must be in [1,32]")
	}
	if cfg.LockStripes&(cfg.LockStripes-1) != 0 {
		return nil, errors.New("generic: LockStripes must be a power of two")
	}
	if cfg.MaxSearchSlots < 2*cfg.Associativity {
		return nil, errors.New("generic: MaxSearchSlots too small")
	}
	t := &Table[K, V]{
		cfg:   cfg,
		seed:  maphash.MakeSeed(),
		assoc: uint64(cfg.Associativity),
		locks: spinlock.NewStripe(cfg.LockStripes),
	}
	buckets := uint64(2)
	for buckets*t.assoc < cfg.InitialCapacity {
		buckets <<= 1
	}
	t.arr.Store(t.newArrays(buckets))
	return t, nil
}

// MustNew panics on configuration errors.
func MustNew[K comparable, V any](cfg Config) *Table[K, V] {
	t, err := New[K, V](cfg)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Table[K, V]) newArrays(buckets uint64) *tArrays[K, V] {
	return &tArrays[K, V]{
		buckets: buckets,
		keys:    make([]K, buckets*t.assoc),
		vals:    make([]V, buckets*t.assoc),
		occ:     make([]uint32, buckets),
	}
}

// Len returns the number of stored keys.
func (t *Table[K, V]) Len() uint64 { return uint64(t.size.total()) }

// Cap returns the current slot count.
func (t *Table[K, V]) Cap() uint64 { return t.arr.Load().buckets * t.assoc }

// LoadFactor returns Len/Cap.
func (t *Table[K, V]) LoadFactor() float64 { return float64(t.Len()) / float64(t.Cap()) }

// LockStats returns the stripe table's lock-contention counters.
func (t *Table[K, V]) LockStats() spinlock.StripeStats { return t.locks.Stats() }

func (t *Table[K, V]) hash(key K) uint64 {
	return maphash.Comparable(t.seed, key)
}

func (t *Table[K, V]) twoBuckets(h, buckets uint64) (uint64, uint64) {
	mask := buckets - 1
	b1 := h & mask
	b2 := (h >> 32) * 0xC2B2AE3D27D4EB4F >> 32 & mask
	if b2 == b1 {
		b2 = (b2 ^ 1) & mask
	}
	return b1, b2
}

func (t *Table[K, V]) altBucket(h, buckets, b uint64) uint64 {
	b1, b2 := t.twoBuckets(h, buckets)
	if b == b1 {
		return b2
	}
	return b1
}

// lockPair acquires the stripes of b1 and b2 in order and returns them.
func (t *Table[K, V]) lockPair(b1, b2 uint64) (uint64, uint64) {
	l1, l2 := t.locks.IndexFor(b1), t.locks.IndexFor(b2)
	t.locks.LockPair(l1, l2)
	return l1, l2
}

// Get returns the value for key. The bucket-pair lock is held just long
// enough to copy the value out (§7: locked reads make pointer-valued items
// safe to hand to the caller).
func (t *Table[K, V]) Get(key K) (V, bool) {
	h := t.hash(key)
	for {
		arr := t.arr.Load()
		b1, b2 := t.twoBuckets(h, arr.buckets)
		l1, l2 := t.lockPair(b1, b2)
		if t.arr.Load() != arr {
			t.locks.UnlockPair(l1, l2)
			continue
		}
		for _, b := range [2]uint64{b1, b2} {
			if i, ok := t.find(arr, b, key); ok {
				v := arr.vals[i]
				t.locks.UnlockPair(l1, l2)
				return v, true
			}
		}
		t.locks.UnlockPair(l1, l2)
		var zero V
		return zero, false
	}
}

// find scans bucket b for key; caller holds its stripe.
func (t *Table[K, V]) find(arr *tArrays[K, V], b uint64, key K) (uint64, bool) {
	occ := arr.occ[b]
	base := b * t.assoc
	for s := 0; occ != 0; s, occ = s+1, occ>>1 {
		if occ&1 != 0 && arr.keys[base+uint64(s)] == key {
			return base + uint64(s), true
		}
	}
	return 0, false
}

// Insert adds key, returning ErrExists if present. With auto-grow enabled
// (the default) it resizes instead of returning ErrFull.
func (t *Table[K, V]) Insert(key K, val V) error {
	return t.put(key, val, false)
}

// Upsert inserts or overwrites key.
func (t *Table[K, V]) Upsert(key K, val V) error {
	return t.put(key, val, true)
}

func (t *Table[K, V]) put(key K, val V, overwrite bool) error {
	for {
		err := t.tryPut(key, val, overwrite)
		if err != ErrFull || t.cfg.DisableAutoGrow {
			return err
		}
		t.grow()
	}
}

func (t *Table[K, V]) tryPut(key K, val V, overwrite bool) error {
	h := t.hash(key)
	for {
		arr := t.arr.Load()
		b1, b2 := t.twoBuckets(h, arr.buckets)

		switch t.attempt(arr, b1, b2, key, val, overwrite, -1) {
		case putDone:
			return nil
		case putExists:
			return ErrExists
		case putStale:
			continue
		case putNoSpace:
		}

		path, ok := t.search(arr, b1, b2)
		if !ok {
			// Re-check under the lock before giving up.
			switch t.attempt(arr, b1, b2, key, val, overwrite, -1) {
			case putDone:
				return nil
			case putExists:
				return ErrExists
			case putStale:
				continue
			}
			return ErrFull
		}
		t.stats.observePath(b1, uint64(len(path)-1))
		switch t.execute(arr, path, b1, b2, key, val, overwrite) {
		case putDone:
			return nil
		case putExists:
			return ErrExists
		}
		// Path invalidated or arrays swapped (Eq. 1); retry.
		t.stats.restarts.add(b1, 1)
	}
}

type putResult int

const (
	putDone putResult = iota
	putExists
	putNoSpace
	putStale
)

func (t *Table[K, V]) attempt(arr *tArrays[K, V], b1, b2 uint64, key K, val V, overwrite bool, reqSlot int) putResult {
	l1, l2 := t.lockPair(b1, b2)
	defer t.locks.UnlockPair(l1, l2)
	if t.arr.Load() != arr {
		return putStale
	}
	for _, b := range [2]uint64{b1, b2} {
		if i, ok := t.find(arr, b, key); ok {
			if !overwrite {
				return putExists
			}
			arr.vals[i] = val
			return putDone
		}
	}
	if reqSlot >= 0 {
		if arr.occ[b1]&(1<<uint(reqSlot)) != 0 {
			return putNoSpace
		}
		t.place(arr, b1, reqSlot, key, val)
		return putDone
	}
	for _, b := range [2]uint64{b1, b2} {
		if s, ok := freeSlot(arr.occ[b], int(t.assoc)); ok {
			t.place(arr, b, s, key, val)
			return putDone
		}
	}
	return putNoSpace
}

func (t *Table[K, V]) place(arr *tArrays[K, V], b uint64, s int, key K, val V) {
	i := b*t.assoc + uint64(s)
	arr.keys[i] = key
	arr.vals[i] = val
	arr.occ[b] |= 1 << uint(s)
	t.size.add(b, 1)
}

func freeSlot(occ uint32, assoc int) (int, bool) {
	for s := 0; s < assoc; s++ {
		if occ&(1<<uint(s)) == 0 {
			return s, true
		}
	}
	return 0, false
}

// Delete removes key, reporting whether it was present.
func (t *Table[K, V]) Delete(key K) bool {
	h := t.hash(key)
	for {
		arr := t.arr.Load()
		b1, b2 := t.twoBuckets(h, arr.buckets)
		l1, l2 := t.lockPair(b1, b2)
		if t.arr.Load() != arr {
			t.locks.UnlockPair(l1, l2)
			continue
		}
		deleted := false
		for _, b := range [2]uint64{b1, b2} {
			if i, ok := t.find(arr, b, key); ok {
				var zeroK K
				var zeroV V
				arr.keys[i] = zeroK // release references for the GC
				arr.vals[i] = zeroV
				arr.occ[b] &^= 1 << uint(i-b*t.assoc)
				t.size.add(b, -1)
				deleted = true
				break
			}
		}
		t.locks.UnlockPair(l1, l2)
		return deleted
	}
}

// Range calls fn for every key/value pair until it returns false, holding
// every stripe for the duration (writers block).
func (t *Table[K, V]) Range(fn func(key K, val V) bool) {
	t.growMu.Lock()
	defer t.growMu.Unlock()
	t.locks.LockAll()
	defer t.locks.UnlockAll()
	arr := t.arr.Load()
	for b := uint64(0); b < arr.buckets; b++ {
		occ := arr.occ[b]
		for s := 0; occ != 0; s, occ = s+1, occ>>1 {
			if occ&1 == 0 {
				continue
			}
			i := b*t.assoc + uint64(s)
			if !fn(arr.keys[i], arr.vals[i]) {
				return
			}
		}
	}
}
