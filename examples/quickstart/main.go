// Quickstart demonstrates the cuckoohash public API: creating a table,
// inserting, looking up, updating and deleting, plus the concurrent usage
// pattern the table is designed for.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"

	"cuckoohash"
)

func main() {
	// A table with room for ~1M entries. Only Capacity is required; the
	// defaults are the paper's (8-way buckets, BFS search, fine-grained
	// striped locks).
	m, err := cuckoohash.NewMap(cuckoohash.Config{Capacity: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}

	// Basic operations.
	if err := m.Insert(42, 4200); err != nil {
		log.Fatal(err)
	}
	if v, ok := m.Lookup(42); ok {
		fmt.Println("lookup(42) =", v)
	}
	if err := m.Insert(42, 0); errors.Is(err, cuckoohash.ErrExists) {
		fmt.Println("insert(42) again -> ErrExists, as expected")
	}
	m.Upsert(42, 4201) // overwrite
	m.Update(42, 4202) // overwrite only-if-present
	fmt.Println("len =", m.Len(), "load factor =", m.LoadFactor())
	m.Delete(42)

	// The designed-for usage: many goroutines reading and writing at once.
	// Writers insert disjoint keys; readers run lock-free throughout.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) << 32
			for i := uint64(0); i < 100_000; i++ {
				if err := m.Insert(base|i, i); err != nil {
					log.Fatalf("insert: %v", err)
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			hits := 0
			for i := uint64(0); i < 200_000; i++ {
				if _, ok := m.Lookup(uint64(r)<<32 | (i % 100_000)); ok {
					hits++
				}
			}
			fmt.Printf("reader %d: %d hits\n", r, hits)
		}(r)
	}
	wg.Wait()

	fmt.Println("final len =", m.Len())
	st := m.Stats()
	fmt.Printf("cuckoo stats: %d path searches, %d displacements, %d restarts, max path %d\n",
		st.Searches, st.Displacements, st.PathRestarts, st.MaxPathLen)
	fmt.Printf("memory: %.1f bytes/entry\n", float64(m.MemoryFootprint())/float64(m.Len()))
}
