// Dedup deduplicates a chunked data stream in parallel, using Insert's
// atomic insert-if-absent semantics: the first worker to insert a chunk
// fingerprint owns it; every later attempt observes ErrExists. This is the
// multi-writer pattern the paper's cuckoo+ design enables — all workers
// hammer Insert on one shared table and correctness rides on the
// duplicate check running inside the insert critical section (§4.3.1).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"cuckoohash"
	"cuckoohash/internal/hashfn"
	"cuckoohash/internal/workload"
)

const chunkSize = 4096

// chunkStream synthesizes fingerprints for a stream with a configurable
// duplicate rate: a fraction of chunks are drawn from a popular working
// set, the rest are unique.
func chunkStream(worker int, n int, dupFrac float64, out chan<- uint64) {
	rnd := workload.NewRand(uint64(worker) + 1)
	for i := 0; i < n; i++ {
		var fp uint64
		if rnd.Float64() < dupFrac {
			fp = hashfn.SplitMix64(rnd.Intn(10_000)) // popular chunk
		} else {
			fp = hashfn.Mix13(uint64(worker)<<40 | uint64(i) | 1<<63)
		}
		out <- fp
	}
}

func main() {
	workers := flag.Int("workers", 4, "dedup worker goroutines")
	chunks := flag.Int("chunks", 200_000, "chunks per producer")
	dup := flag.Float64("dup", 0.6, "fraction of duplicate chunks")
	flag.Parse()

	index, err := cuckoohash.NewMap(cuckoohash.Config{
		Capacity: 2 * uint64(*workers) * uint64(*chunks),
	})
	if err != nil {
		log.Fatal(err)
	}

	stream := make(chan uint64, 4096)
	done := make(chan struct{})
	var unique, duplicate atomic.Uint64

	for w := 0; w < *workers; w++ {
		go func(w int) {
			for fp := range stream {
				// Value: the (synthetic) storage offset for the chunk.
				err := index.Insert(fp, unique.Load()*chunkSize)
				switch {
				case err == nil:
					unique.Add(1)
				case errors.Is(err, cuckoohash.ErrExists):
					duplicate.Add(1)
				default:
					log.Fatalf("worker %d: %v", w, err)
				}
			}
			done <- struct{}{}
		}(w)
	}

	start := time.Now()
	producers := make(chan struct{})
	for p := 0; p < *workers; p++ {
		go func(p int) {
			chunkStream(p, *chunks, *dup, stream)
			producers <- struct{}{}
		}(p)
	}
	for p := 0; p < *workers; p++ {
		<-producers
	}
	close(stream)
	for w := 0; w < *workers; w++ {
		<-done
	}
	elapsed := time.Since(start)

	total := uint64(*workers) * uint64(*chunks)
	u, d := unique.Load(), duplicate.Load()
	if u+d != total {
		log.Fatalf("accounting bug: %d+%d != %d", u, d, total)
	}
	if u != index.Len() {
		log.Fatalf("index disagrees: %d unique counted, %d stored", u, index.Len())
	}
	fmt.Printf("deduped %d chunks (%.1f MB logical) in %v\n",
		total, float64(total*chunkSize)/1e6, elapsed.Round(time.Millisecond))
	fmt.Printf("unique: %d (%.1f MB physical), duplicates: %d, dedup ratio %.2fx\n",
		u, float64(u*chunkSize)/1e6, d, float64(total)/float64(u))
	fmt.Printf("index throughput: %.2f M chunk-inserts/s\n",
		float64(total)/elapsed.Seconds()/1e6)
}
