// Tsxlab walks through the paper's hardware-transactional-memory findings
// (§2.3 and §5) on the emulated TSX substrate:
//
//  1. Naive lock elision on an unoptimized table does not scale — long
//     transactions conflict, overflow capacity, and convoy on the fallback
//     lock.
//  2. The algorithmic optimizations (lock-later + BFS) shrink the
//     transactional footprint to a handful of lines, so the same elision
//     machinery suddenly works.
//  3. The retry policy matters: the paper's tuned TSX* policy beats the
//     released glibc policy by retrying more aggressively.
//
// Run it and read the abort-rate table; on a multi-core machine the
// differences are dramatic, on a single core they shrink (transactions
// serialize naturally) but the footprint numbers still tell the story.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"cuckoohash/internal/core"
	"cuckoohash/internal/htm"
	"cuckoohash/internal/memc3"
	"cuckoohash/internal/workload"
)

type result struct {
	name     string
	mops     float64
	stats    htm.Stats
	fallback float64
}

func run(name string, threads int, perThread uint64, insert func(th int, key, val uint64) error, stats func() htm.Stats) result {
	var wg sync.WaitGroup
	start := time.Now()
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			gen := workload.NewUniformKeys(42, th)
			for i := uint64(0); i < perThread; i++ {
				if err := insert(th, gen.NextKey(), i); err != nil {
					return
				}
			}
		}(th)
	}
	wg.Wait()
	elapsed := time.Since(start)
	s := stats()
	fb := 0.0
	if total := s.Commits + s.Fallbacks; total > 0 {
		fb = float64(s.Fallbacks) / float64(total)
	}
	return result{
		name:     name,
		mops:     float64(uint64(threads)*perThread) / elapsed.Seconds() / 1e6,
		stats:    s,
		fallback: fb,
	}
}

func main() {
	threads := flag.Int("threads", 8, "concurrent writer goroutines")
	keys := flag.Uint64("keys", 20_000, "inserts per writer")
	flag.Parse()

	// Size the tables so the measured inserts run between ~80% and ~95%
	// occupancy: that is where cuckoo-path searches happen, and where the
	// unoptimized design's transactional footprint explodes. Tables round
	// capacity up to a power of two, so prefill against the actual Cap.
	measured := uint64(*threads) * *keys
	slots := measured * 100 / 15
	cfg := htm.DefaultConfig()

	// prefill fills to cap-15% so the measured phase ends near 95%.
	prefill := func(cap uint64, insert func(k, v uint64) error) {
		gen := workload.NewUniformKeys(7, 1<<20)
		target := cap*95/100 - measured
		for i := uint64(0); i < target; i++ {
			if insert(gen.NextKey(), i) != nil {
				return
			}
		}
	}

	fmt.Printf("emulated TSX lab: %d writers x %d inserts, GOMAXPROCS=%d\n\n",
		*threads, *keys, runtime.GOMAXPROCS(0))

	var results []result

	// 1. Unoptimized cuckoo (whole Algorithm 1 in one transaction).
	for _, p := range []htm.Policy{htm.PolicyNone, htm.PolicyGlibc, htm.PolicyTuned} {
		o := memc3.Defaults(slots)
		tab := memc3.MustNewTxTable(o, p, cfg)
		prefill(tab.Cap(), tab.Insert)
		tab.Region().ResetStats()
		results = append(results, run(
			fmt.Sprintf("unoptimized cuckoo + %s", p),
			*threads, *keys,
			func(_ int, k, v uint64) error { return tab.Insert(k, v) },
			func() htm.Stats { return tab.Region().Stats() },
		))
	}

	// 2. Optimized cuckoo+ (search outside the transaction, BFS paths).
	for _, p := range []htm.Policy{htm.PolicyGlibc, htm.PolicyTuned} {
		o := core.Defaults(slots)
		tab := core.MustNewTxTable(o, p, cfg)
		prefill(tab.Cap(), tab.Insert)
		tab.Region().ResetStats()
		results = append(results, run(
			fmt.Sprintf("cuckoo+ + %s", p),
			*threads, *keys,
			func(_ int, k, v uint64) error { return tab.Insert(k, v) },
			func() htm.Stats { return tab.Region().Stats() },
		))
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\tMops/s\tabort rate\tcapacity aborts\tfallback frac\tavg lines/txn (r+w)")
	for _, r := range results {
		rd, wr := r.stats.AvgFootprint()
		fmt.Fprintf(w, "%s\t%.2f\t%.1f%%\t%d\t%.1f%%\t%.1f + %.1f\n",
			r.name, r.mops, 100*r.stats.AbortRate(), r.stats.CapacityAborts, 100*r.fallback, rd, wr)
	}
	w.Flush()

	fmt.Println("\nreading the table:")
	fmt.Println(" - 'lock' never speculates: its throughput is the serialized baseline (§2.3's global lock)")
	fmt.Println(" - unoptimized + elision aborts on capacity (the DFS search drags hundreds of lines")
	fmt.Println("   into the read set) and convoys on the fallback lock")
	fmt.Println(" - cuckoo+ transactions touch ~a dozen lines, so elision commits speculatively;")
	fmt.Println("   tsx* retries harder than tsx-glibc and falls back less (Appendix A)")
	fmt.Println(" - the footprint column is deterministic: the unoptimized insert drags its whole")
	fmt.Println("   DFS search into the transaction, cuckoo+ only the few displacement writes")
}
