package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

func startTestServer(t *testing.T) (addr string, c *cache) {
	t.Helper()
	c = newCache()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go serve(ln, c)
	return ln.Addr().String(), c
}

type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) roundTrip(t *testing.T, req string) string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, req); err != nil {
		t.Fatal(err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(line)
}

func TestProtocol(t *testing.T) {
	addr, _ := startTestServer(t)
	cl := dial(t, addr)

	if got := cl.roundTrip(t, "GET missing"); got != "MISS" {
		t.Fatalf("GET missing = %q", got)
	}
	if got := cl.roundTrip(t, "SET k1 hello"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}
	if got := cl.roundTrip(t, "GET k1"); got != "VALUE hello" {
		t.Fatalf("GET = %q", got)
	}
	if got := cl.roundTrip(t, "SET k1 world"); got != "OK" {
		t.Fatalf("SET overwrite = %q", got)
	}
	if got := cl.roundTrip(t, "GET k1"); got != "VALUE world" {
		t.Fatalf("GET after overwrite = %q", got)
	}
	if got := cl.roundTrip(t, "DEL k1"); got != "OK" {
		t.Fatalf("DEL = %q", got)
	}
	if got := cl.roundTrip(t, "DEL k1"); got != "MISS" {
		t.Fatalf("DEL again = %q", got)
	}
	if got := cl.roundTrip(t, "STATS"); !strings.HasPrefix(got, "STATS 0 ") {
		t.Fatalf("STATS = %q", got)
	}
	if got := cl.roundTrip(t, "BOGUS"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("BOGUS = %q", got)
	}
	if got := cl.roundTrip(t, "SET justkey"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("short SET = %q", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, c := startTestServer(t)
	const clients = 8
	const keysPer = 200
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := dial(t, addr)
			for k := 0; k < keysPer; k++ {
				key := fmt.Sprintf("c%d-k%d", i, k)
				if got := cl.roundTrip(t, "SET "+key+" v"+key); got != "OK" {
					t.Errorf("SET %s = %q", key, got)
					return
				}
			}
			for k := 0; k < keysPer; k++ {
				key := fmt.Sprintf("c%d-k%d", i, k)
				if got := cl.roundTrip(t, "GET "+key); got != "VALUE v"+key {
					t.Errorf("GET %s = %q", key, got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if got := c.t.Len(); got != clients*keysPer {
		t.Fatalf("cache holds %d entries, want %d", got, clients*keysPer)
	}
}
