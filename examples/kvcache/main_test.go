package main

import (
	"testing"

	"cuckoohash/client"
	"cuckoohash/server"
)

// The protocol and concurrency behavior are tested in server/ and
// client/; this exercises the example's own demo path.
func TestDemoClientLoop(t *testing.T) {
	srv, err := server.New(server.Config{Addr: "127.0.0.1:0", Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })

	if err := runClient(srv.Addr().String(), 0, 3000); err != nil {
		t.Fatal(err)
	}
	// i%3==0 of 3000 ops are SETs over 1000 distinct keys.
	if got := srv.Cache().Len(); got != 1000 {
		t.Fatalf("cache holds %d entries, want 1000", got)
	}
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["sets"] != "1000" {
		t.Fatalf("sets = %s, want 1000", stats["sets"])
	}
}
