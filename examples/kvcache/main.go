// Kvcache is a memcached-like in-memory key-value cache server built on the
// generic cuckoo table — the application class that motivates the paper
// (MemC3 is a memcached replacement; §1 cites kernel and user-level caches).
//
// It speaks a tiny text protocol over TCP:
//
//	SET <key> <value>\n  -> OK\n
//	GET <key>\n          -> VALUE <value>\n or MISS\n
//	DEL <key>\n          -> OK\n or MISS\n
//	STATS\n              -> STATS <entries> <hits> <misses>\n
//
// Run as a server with -listen, or run with no flags for a self-contained
// demo: it starts the server on a loopback port and drives it with
// concurrent clients.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"cuckoohash/generic"
)

type cache struct {
	t      *generic.Table[string, string]
	hits   atomic.Uint64
	misses atomic.Uint64
}

func newCache() *cache {
	return &cache{t: generic.MustNew[string, string](generic.Config{InitialCapacity: 1 << 16})}
}

func (c *cache) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		parts := strings.SplitN(sc.Text(), " ", 3)
		switch strings.ToUpper(parts[0]) {
		case "SET":
			if len(parts) != 3 {
				fmt.Fprintln(w, "ERR usage: SET key value")
				break
			}
			if err := c.t.Upsert(parts[1], parts[2]); err != nil {
				fmt.Fprintln(w, "ERR", err)
				break
			}
			fmt.Fprintln(w, "OK")
		case "GET":
			if len(parts) != 2 {
				fmt.Fprintln(w, "ERR usage: GET key")
				break
			}
			if v, ok := c.t.Get(parts[1]); ok {
				c.hits.Add(1)
				fmt.Fprintln(w, "VALUE", v)
			} else {
				c.misses.Add(1)
				fmt.Fprintln(w, "MISS")
			}
		case "DEL":
			if len(parts) != 2 {
				fmt.Fprintln(w, "ERR usage: DEL key")
				break
			}
			if c.t.Delete(parts[1]) {
				fmt.Fprintln(w, "OK")
			} else {
				fmt.Fprintln(w, "MISS")
			}
		case "STATS":
			fmt.Fprintln(w, "STATS", c.t.Len(), c.hits.Load(), c.misses.Load())
		case "QUIT":
			w.Flush()
			return
		default:
			fmt.Fprintln(w, "ERR unknown command")
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func serve(ln net.Listener, c *cache) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go c.handle(conn)
	}
}

func main() {
	listen := flag.String("listen", "", "address to serve on (empty: run the self-driving demo)")
	clients := flag.Int("clients", 4, "demo client connections")
	opsPer := flag.Int("ops", 20000, "demo operations per client")
	flag.Parse()

	c := newCache()
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		log.Println("kvcache listening on", ln.Addr())
		serve(ln, c)
		return
	}

	// Demo mode: loopback server plus concurrent clients.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go serve(ln, c)
	log.Println("demo server on", ln.Addr())

	var wg sync.WaitGroup
	for cl := 0; cl < *clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				log.Fatalf("dial: %v", err)
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			w := bufio.NewWriter(conn)
			for i := 0; i < *opsPer; i++ {
				key := fmt.Sprintf("user:%d:%d", cl, i%1000)
				if i%3 == 0 {
					fmt.Fprintf(w, "SET %s session-%d\n", key, i)
				} else {
					fmt.Fprintf(w, "GET %s\n", key)
				}
				w.Flush()
				if _, err := r.ReadString('\n'); err != nil {
					log.Fatalf("client %d: %v", cl, err)
				}
			}
		}(cl)
	}
	wg.Wait()
	fmt.Printf("demo done: %d entries, %d hits, %d misses\n",
		c.t.Len(), c.hits.Load(), c.misses.Load())
}
