// Kvcache demonstrates the cuckood cache service: the production server
// and client packages this example used to hand-roll (the application
// class that motivates the paper — MemC3 is a memcached replacement).
//
// Run as a server with -listen, or with no flags for a self-contained
// demo: it starts a daemon on a loopback port, drives it with concurrent
// pipelined clients, prints the server's STATS, and drains gracefully.
//
// The wire protocol (SET/SETEX/GET/DEL/TTL/STATS over TCP text lines) is
// documented in docs/PROTOCOL.md; cmd/cuckood is the full daemon with a
// load-generator mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"cuckoohash/client"
	"cuckoohash/server"
)

func main() {
	listen := flag.String("listen", "", "address to serve on (empty: run the self-driving demo)")
	clients := flag.Int("clients", 4, "demo client connections")
	opsPer := flag.Int("ops", 20000, "demo operations per client")
	flag.Parse()

	if *listen != "" {
		srv, err := server.New(server.Config{Addr: *listen})
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Listen(); err != nil {
			log.Fatal(err)
		}
		log.Println("kvcache listening on", srv.Addr())
		log.Fatal(srv.Serve())
	}

	// Demo mode: loopback daemon plus concurrent pipelined clients.
	srv, err := server.New(server.Config{Addr: "127.0.0.1:0", Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	log.Println("demo server on", srv.Addr())

	var wg sync.WaitGroup
	for cl := 0; cl < *clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			if err := runClient(srv.Addr().String(), cl, *opsPer); err != nil {
				log.Fatalf("client %d: %v", cl, err)
			}
		}(cl)
	}
	wg.Wait()

	printStats(srv.Addr().String())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal("drain: ", err)
	}
	fmt.Println("demo done: server drained cleanly")
}

// runClient issues a 1:2 SET:GET mix over one pipelined connection.
func runClient(addr string, cl, ops int) error {
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	const depth = 16
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("user:%d:%d", cl, i%1000)
		if i%3 == 0 {
			err = c.QueueSet(key, fmt.Sprintf("session-%d", i), 0)
		} else {
			err = c.QueueGet(key)
		}
		if err != nil {
			return err
		}
		if c.Pending() == depth || i == ops-1 {
			reps, err := c.Flush()
			if err != nil {
				return err
			}
			for _, rep := range reps {
				if rep.Err != nil {
					return rep.Err
				}
			}
		}
	}
	return nil
}

func printStats(addr string) {
	c, err := client.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	stats, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-16s %s\n", name, stats[name])
	}
}
