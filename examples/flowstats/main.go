// Flowstats is a concurrent network-flow statistics collector: the small
// fixed-size key/value, write-heavy workload class the paper's introduction
// motivates (kernel caches, per-flow state). Each "RX queue" goroutine owns
// the flows steered to it (as NIC RSS would) and counts packets and bytes
// in a shared cuckoo table; a monitor goroutine reads the same table
// concurrently through the lock-free optimistic Lookup path.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"cuckoohash"
	"cuckoohash/internal/workload"
)

// flowKey packs a synthetic 5-tuple hash and the owning queue into 8 bytes;
// the queue-id-in-key mirrors RSS steering (a flow is always updated by one
// queue, so read-modify-write needs no cross-thread atomicity).
func flowKey(queue int, flow uint64) uint64 {
	return uint64(queue)<<56 | (flow & (1<<56 - 1))
}

func main() {
	queues := flag.Int("queues", 4, "RX queue goroutines")
	packets := flag.Int("packets", 500_000, "packets per queue")
	flows := flag.Uint64("flows", 50_000, "distinct flows per queue")
	flag.Parse()

	// Value layout: word0 = packet count, word1 = byte count.
	m, err := cuckoohash.NewMap(cuckoohash.Config{
		Capacity:   2 * uint64(*queues) * *flows,
		ValueWords: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	stop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() { // concurrent reader: periodic table snapshot
		defer monWG.Done()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				fmt.Printf("  monitor: %d active flows (load %.2f)\n", m.Len(), m.LoadFactor())
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for q := 0; q < *queues; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rnd := workload.NewZipfKeys(uint64(q)+1, *flows, 0.99) // skewed flow popularity
			val := make([]uint64, 2)
			for p := 0; p < *packets; p++ {
				key := flowKey(q, rnd.NextKey())
				size := 64 + (key^uint64(p))%1400 // synthetic packet size
				// Owner-exclusive read-modify-write.
				if m.LookupValue(key, val) {
					val[0]++
					val[1] += size
					m.UpsertValue(key, val)
				} else {
					val[0], val[1] = 1, size
					if err := m.UpsertValue(key, val); err != nil {
						log.Fatalf("queue %d: %v", q, err)
					}
				}
			}
		}(q)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	monWG.Wait()

	total := *queues * *packets
	fmt.Printf("processed %d packets in %v (%.2f Mpps) across %d queues\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds()/1e6, *queues)
	fmt.Printf("%d distinct flows tracked, %.1f bytes of table per flow\n",
		m.Len(), float64(m.MemoryFootprint())/float64(m.Len()))

	// Top-flow report via Range (full-table snapshot).
	var topKey, topPkts, totPkts uint64
	m.Range(func(k uint64, v []uint64) bool {
		totPkts += v[0]
		if v[0] > topPkts {
			topKey, topPkts = k, v[0]
		}
		return true
	})
	fmt.Printf("hottest flow %#x: %d packets (%.1f%% of traffic)\n",
		topKey, topPkts, 100*float64(topPkts)/float64(totPkts))
}
