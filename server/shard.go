// Package server implements cuckood, a memcached-style network cache
// daemon backed by the generic concurrent cuckoo table. It is the service
// layer the paper's evaluation assumes (§6 measures the table inside
// MemC3, a memcached replacement): a text protocol over TCP with
// pipelining, a cache sharded N ways by key hash so lock stripes and Grow
// operations stay independent, TTL support with lazy expiry plus a
// background sweeper, bounded-memory admission (FIFO eviction on a full
// shard instead of failing the connection), and per-shard statistics.
//
// The wire protocol is documented in docs/PROTOCOL.md.
package server

import (
	"errors"
	"hash/maphash"
	"log/slog"
	"math/bits"
	"sync"
	"time"

	"cuckoohash/generic"
)

// ErrServerFull is reported to a client when a SET cannot find room even
// after evicting; the connection itself stays up.
var ErrServerFull = errors.New("server: cache full")

// maxEvictTries bounds how many victims one SET may evict before giving
// up. Each eviction frees at least one slot, so a handful of tries is
// enough unless the cuckoo search keeps failing on pathological keys.
const maxEvictTries = 8

// entry is the stored value plus its absolute expiry time.
type entry struct {
	val      string
	expireAt int64 // unix nanoseconds; 0 = never expires
}

func (e entry) expired(now int64) bool {
	return e.expireAt != 0 && now >= e.expireAt
}

// Cache is the sharded store behind the daemon. Keys are hashed to one of
// N independent cuckoo tables, so a Grow or stripe-lock convoy in one
// shard never stalls traffic to the others. All methods are safe for
// concurrent use.
type Cache struct {
	seed   maphash.Seed
	shards []*shard
	mask   uint64
	stats  *stats
	log    *slog.Logger
	failOp func(op, key string) error // fault-injection hook; nil in production
}

// shard is one cuckoo table plus a FIFO ring of inserted keys used as the
// eviction order when the table fills.
type shard struct {
	table *generic.Table[string, entry]

	mu   sync.Mutex // guards the ring only; the table locks itself
	ring []string
	head uint64 // next victim
	tail uint64 // next free slot; tail-head = live ring entries
}

// NewCache creates a cache with the given shard count (rounded up to a
// power of two, min 1) and per-shard slot capacity. Total capacity is
// bounded: when a shard fills, SET evicts in approximate insertion order.
func NewCache(shards int, slotsPerShard uint64) (*Cache, error) {
	if shards < 1 {
		shards = 1
	}
	if shards&(shards-1) != 0 {
		shards = 1 << bits.Len(uint(shards))
	}
	if slotsPerShard == 0 {
		slotsPerShard = 1 << 16
	}
	c := &Cache{
		seed:   maphash.MakeSeed(),
		shards: make([]*shard, shards),
		mask:   uint64(shards - 1),
		stats:  newStats(shards),
		log:    slog.New(slog.DiscardHandler),
	}
	for i := range c.shards {
		t, err := generic.New[string, entry](generic.Config{
			InitialCapacity: slotsPerShard,
			DisableAutoGrow: true,
		})
		if err != nil {
			return nil, err
		}
		c.shards[i] = &shard{
			table: t,
			ring:  make([]string, t.Cap()),
		}
	}
	return c, nil
}

// setLogger swaps the cache's logger; called before the cache is shared.
func (c *Cache) setLogger(log *slog.Logger) {
	if log != nil {
		c.log = log
	}
}

// shardFor maps a key to its shard index.
func (c *Cache) shardFor(key string) int {
	return int(maphash.String(c.seed, key) & c.mask)
}

// Len returns the number of stored entries (including not-yet-expired
// ones awaiting the sweeper).
func (c *Cache) Len() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.table.Len()
	}
	return n
}

// Cap returns the total slot capacity across shards.
func (c *Cache) Cap() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.table.Cap()
	}
	return n
}

// Stats exposes the cache's counters.
func (c *Cache) Stats() *stats { return c.stats }

// SetFailpoint installs a fault-injection hook (see faultinject.FailOp)
// consulted before each SET; its error is returned to the client as if
// the table itself had failed, e.g. a forced ErrServerFull. Install
// before serving traffic; nil disables.
func (c *Cache) SetFailpoint(f func(op, key string) error) { c.failOp = f }

// Set stores key=val with the given TTL (0 = no expiry). When the shard
// is full it evicts entries in approximate insertion order; if even that
// fails it returns ErrServerFull.
func (c *Cache) Set(key, val string, ttl time.Duration) error {
	if f := c.failOp; f != nil {
		if err := f("SET", key); err != nil {
			return err
		}
	}
	var expireAt int64
	if ttl > 0 {
		expireAt = time.Now().Add(ttl).UnixNano()
	}
	si := c.shardFor(key)
	s := c.shards[si]
	e := entry{val: val, expireAt: expireAt}
	err := s.set(key, e, func(victim string) {
		c.stats.evictions.Add(si, 1)
		// Eviction only happens when a shard is full, so this is off the
		// fast path even at debug verbosity.
		c.log.Debug("evicted entry", "shard", si, "key", victim)
	})
	if err == nil {
		c.stats.sets.Add(si, 1)
	}
	return err
}

func (s *shard) set(key string, e entry, onEvict func(victim string)) error {
	for tries := 0; ; tries++ {
		err := s.table.Insert(key, e)
		switch err {
		case nil:
			s.pushRing(key)
			return nil
		case generic.ErrExists:
			// Overwrite in place; no new slot is consumed, so the ring
			// keeps its existing record for this key.
			return s.table.Upsert(key, e)
		}
		// ErrFull: free room and retry. Escalate — evicting one entry
		// frees a slot *somewhere*, but not necessarily one reachable
		// from this key's two candidate buckets, so each retry evicts
		// one more victim than the last to open up the cuckoo graph.
		if tries >= maxEvictTries {
			return ErrServerFull
		}
		for n := 0; n <= tries; n++ {
			if !s.evictOne(onEvict) {
				return ErrServerFull
			}
		}
	}
}

// pushRing records an inserted key as a future eviction victim. The ring
// has exactly table-capacity slots; if it wraps (possible because deleted
// keys leave stale records behind) the oldest record is dropped, which
// only makes eviction order more approximate, never incorrect.
func (s *shard) pushRing(key string) {
	s.mu.Lock()
	if s.tail-s.head == uint64(len(s.ring)) {
		s.head++
	}
	s.ring[s.tail%uint64(len(s.ring))] = key
	s.tail++
	s.mu.Unlock()
}

// evictOne deletes the oldest ring entry that is still present, reporting
// whether a slot was freed. Stale records (keys already deleted or
// re-inserted elsewhere in the ring) are skipped for free.
func (s *shard) evictOne(onEvict func(victim string)) bool {
	for {
		s.mu.Lock()
		if s.head == s.tail {
			s.mu.Unlock()
			return false
		}
		i := s.head % uint64(len(s.ring))
		victim := s.ring[i]
		s.ring[i] = "" // release the string for the GC
		s.head++
		s.mu.Unlock()
		if s.table.Delete(victim) {
			onEvict(victim)
			return true
		}
	}
}

// Get returns the live value for key. Expired entries are deleted lazily
// and reported as misses, so a key never outlives its TTL from a client's
// point of view even if the sweeper has not run yet.
func (c *Cache) Get(key string) (string, bool) {
	si := c.shardFor(key)
	s := c.shards[si]
	c.stats.gets.Add(si, 1)
	e, ok := s.table.Get(key)
	if ok && e.expired(time.Now().UnixNano()) {
		c.expireKey(si, key)
		ok = false
	}
	if !ok {
		c.stats.misses.Add(si, 1)
		return "", false
	}
	c.stats.hits.Add(si, 1)
	return e.val, true
}

// TTL returns the remaining lifetime of key: (d, true) with d > 0 for an
// expiring entry, (0, true) for a persistent one, (0, false) for a miss.
func (c *Cache) TTL(key string) (time.Duration, bool) {
	si := c.shardFor(key)
	e, ok := c.shards[si].table.Get(key)
	if !ok {
		return 0, false
	}
	if e.expireAt == 0 {
		return 0, true
	}
	d := time.Duration(e.expireAt - time.Now().UnixNano())
	if d <= 0 {
		c.expireKey(si, key)
		return 0, false
	}
	return d, true
}

// Delete removes key, reporting whether it was present and live.
func (c *Cache) Delete(key string) bool {
	si := c.shardFor(key)
	s := c.shards[si]
	c.stats.dels.Add(si, 1)
	// An expired-but-unswept entry must look deleted-as-miss, not OK.
	e, ok := s.table.Get(key)
	if ok && e.expired(time.Now().UnixNano()) {
		c.expireKey(si, key)
		return false
	}
	return s.table.Delete(key)
}

// expireKey removes an entry observed to be expired, re-checking under a
// fresh read so a concurrent re-SET of the same key is (almost) never
// deleted. The residual race — key re-set between the check and the
// delete — loses one freshly cached value, which a cache may do. It
// reports whether an entry was actually removed.
func (c *Cache) expireKey(si int, key string) bool {
	s := c.shards[si]
	if e, ok := s.table.Get(key); ok && e.expired(time.Now().UnixNano()) {
		if s.table.Delete(key) {
			c.stats.expired.Add(si, 1)
			return true
		}
	}
	return false
}
