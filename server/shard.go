// Package server implements cuckood, a memcached-style network cache
// daemon backed by the generic concurrent cuckoo table. It is the service
// layer the paper's evaluation assumes (§6 measures the table inside
// MemC3, a memcached replacement): a text protocol over TCP with
// pipelining, a cache sharded N ways by key hash so lock stripes and Grow
// operations stay independent, TTL support with lazy expiry plus a
// background sweeper, bounded-memory admission (FIFO eviction on a full
// shard instead of failing the connection), and per-shard statistics.
//
// The wire protocol is documented in docs/PROTOCOL.md.
package server

import (
	"errors"
	"hash/maphash"
	"log/slog"
	"math/bits"
	"sync/atomic"
	"time"

	"cuckoohash/generic"
	"cuckoohash/internal/obs"
	"cuckoohash/internal/spinlock"
	"cuckoohash/internal/txn"
)

// ErrServerFull is reported to a client when a SET cannot find room even
// after evicting; the connection itself stays up.
var ErrServerFull = errors.New("server: cache full")

// errShardFull is the internal no-room-without-eviction signal from the
// txn-layer backing store; Cache-level write loops turn it into eviction
// attempts (outside any stripe) and eventually into ErrServerFull.
var errShardFull = errors.New("server: shard full")

// maxEvictTries bounds how many victims one SET may evict before giving
// up. Each eviction frees at least one slot, so a handful of tries is
// enough unless the cuckoo search keeps failing on pathological keys.
const maxEvictTries = 8

// growInitialDivisor is how much smaller than its configured capacity a
// shard starts: it grows incrementally (two-generation migration, never
// stop-the-world) toward slotsPerShard as traffic fills it, so an
// oversized -slots-per-shard no longer pays its worst-case footprint up
// front.
const growInitialDivisor = 8

// migrateBatchPerOp is how many old-generation buckets each mutating
// request drains when its shard has a resize in flight. Two buckets
// bounds the added tail latency to a couple of bucket moves while still
// guaranteeing forward progress proportional to write traffic; the
// table's background sweeper handles the idle-shard case.
const migrateBatchPerOp = 2

// entry is the stored value plus its absolute expiry time and the
// version word that orders it against replicated copies of the same
// key. Versions come from the cache's hybrid clock (nextVersion): they
// are unique and monotonic per node, and wall-clock-comparable across
// nodes, so replica application can be last-writer-wins (docs/
// REPLICATION.md). ver 0 marks a pre-replication record (legacy v1
// snapshots) and loses to every real version.
type entry struct {
	val      string
	expireAt int64 // unix nanoseconds; 0 = never expires
	ver      uint64
}

func (e entry) expired(now int64) bool {
	return e.expireAt != 0 && now >= e.expireAt
}

// Cache is the sharded store behind the daemon. Keys are hashed to one of
// N independent cuckoo tables, so a Grow or stripe-lock convoy in one
// shard never stalls traffic to the others. All methods are safe for
// concurrent use.
type Cache struct {
	seed   maphash.Seed
	shards []*shard
	mask   uint64
	stats  *stats
	log    *slog.Logger
	failOp func(op, key string) error // fault-injection hook; nil in production

	// growHook, when non-nil, observes every shard grow event (start and
	// done) after it is logged; the server installs a flight-recorder
	// sink here before serving traffic.
	growHook func(shard int, ev generic.GrowEvent)

	// verClock is the node's hybrid version clock: nextVersion returns
	// max(wall nanos, prev+1), so versions are strictly monotonic locally
	// and approximately wall-clock ordered across nodes (the basis of
	// last-writer-wins replica application). observeVersion ratchets it
	// forward past any version received from a peer, so a node whose
	// clock lags never issues versions that lose to writes it has
	// already applied.
	verClock atomic.Uint64

	// repl, when non-nil, is the cuckoorepl mirror state: every
	// successful write enqueues onto the peer log of the key's other
	// two-choice candidate. Installed once before traffic by
	// Server.EnableReplication; nil keeps the write path at a single
	// pointer check.
	repl *replState

	// txn is the cuckootxn layer (internal/txn): per-key version/lock
	// stripes, atomic verbs, OCC transactions, and split counters. Every
	// mutation of the shards — including plain SET/DEL, TTL expiry,
	// eviction, and migration removal — runs under the key's stripe so
	// the version bump invalidates concurrent transactional read sets.
	txn *txn.Store
}

// shard is one cuckoo table plus a FIFO ring of inserted keys used as the
// eviction order when the table fills.
type shard struct {
	table *generic.Table[string, entry]

	// mu guards the ring only; the table locks itself. It is a spinlock:
	// pushRing runs with the transaction layer's key stripe held (Store →
	// fold paths), and a stripe holder must never park (blockcheck). The
	// ring critical sections are a handful of word writes.
	mu   spinlock.Mutex
	ring []string
	head uint64  // next victim
	tail uint64  // next free slot; tail-head = live ring entries
	_    [8]byte // spinlock is 4 bytes where sync.Mutex was 8: restore the 64-byte line
}

// NewCache creates a cache with the given shard count (rounded up to a
// power of two, min 1) and per-shard slot capacity. Total capacity is
// bounded: when a shard fills, SET evicts in approximate insertion order.
// Each shard starts small and grows toward slotsPerShard with the
// table's incremental two-generation migration — a grow never blocks the
// request loop behind a stop-the-world rehash.
func NewCache(shards int, slotsPerShard uint64) (*Cache, error) {
	if shards < 1 {
		shards = 1
	}
	if shards&(shards-1) != 0 {
		shards = 1 << bits.Len(uint(shards))
	}
	if slotsPerShard == 0 {
		slotsPerShard = 1 << 16
	}
	c := &Cache{
		seed:   maphash.MakeSeed(),
		shards: make([]*shard, shards),
		mask:   uint64(shards - 1),
		stats:  newStats(shards),
		log:    slog.New(slog.DiscardHandler),
	}
	initial := slotsPerShard / growInitialDivisor
	if initial < 64 {
		initial = slotsPerShard
	}
	for i := range c.shards {
		t, err := generic.New[string, entry](generic.Config{
			InitialCapacity: initial,
			MaxCapacity:     slotsPerShard,
			// The server drives migration itself (driveMigration) so the
			// batch work lands inside the request's span as StageMigrate;
			// the table's background sweeper stays on for idle shards.
			MigrateBatch: -1,
			OnGrowEvent:  c.growEventFunc(i),
		})
		if err != nil {
			return nil, err
		}
		c.shards[i] = &shard{
			table: t,
			// The eviction ring is sized to the shard's configured maximum,
			// not its current capacity, so records survive grows.
			ring: make([]string, slotsPerShard),
		}
	}
	c.txn = txn.New(cacheKV{c}, txn.Config{
		// OCC read sets observe the shard's migration epoch so a commit
		// never validates across an incremental-resize generation change.
		Epoch: func(key string) uint64 {
			return c.shards[c.shardFor(key)].table.MigrationEpoch()
		},
	})
	return c, nil
}

// growEventFunc builds shard i's grow-event callback: log it (grows are
// rare and operators want them in the timeline) and forward to the
// optional growHook sink. Events fire from whichever goroutine advances
// the migration — a request or the table's sweeper — so the callback
// must not block.
func (c *Cache) growEventFunc(i int) func(generic.GrowEvent) {
	return func(ev generic.GrowEvent) {
		c.log.Info("shard grow",
			"shard", i,
			"phase", ev.Kind.String(),
			"from_buckets", ev.FromBuckets,
			"to_buckets", ev.ToBuckets,
			"backlog", ev.Backlog)
		if h := c.growHook; h != nil {
			h(i, ev)
		}
	}
}

// driveMigration advances an in-flight incremental resize on shard si by
// a bounded batch, attributing the work to sp as StageMigrate. Mutating
// verbs call this so migration progress scales with write traffic; the
// Growing check is one atomic load, so the common no-grow case costs
// nothing.
//
//cuckoo:coldpath migration work exists only while a shard resize is in flight; bounded to migrateBatchPerOp buckets
func (c *Cache) driveMigration(si int, sp *obs.Span) {
	t := c.shards[si].table
	if !t.Growing() {
		return
	}
	t0 := sp.Begin()
	t.MigrateBatch(migrateBatchPerOp)
	sp.End(obs.StageMigrate, t0)
}

// Txn exposes the transaction layer, e.g. for metrics and tests.
func (c *Cache) Txn() *txn.Store { return c.txn }

// nextVersion issues the next write version: wall-clock nanoseconds,
// bumped past the previous issue when the clock stalls or steps back.
// Lock-free (CAS loop), so it is legal under a key stripe.
func (c *Cache) nextVersion() uint64 {
	now := uint64(time.Now().UnixNano())
	for {
		prev := c.verClock.Load()
		v := now
		if v <= prev {
			v = prev + 1
		}
		if c.verClock.CompareAndSwap(prev, v) {
			return v
		}
	}
}

// observeVersion ratchets the version clock to at least v. Called when
// applying a replicated write so locally issued versions always order
// after everything this node has already accepted.
func (c *Cache) observeVersion(v uint64) {
	for {
		prev := c.verClock.Load()
		if v <= prev {
			return
		}
		if c.verClock.CompareAndSwap(prev, v) {
			return
		}
	}
}

// cacheKV adapts the sharded cuckoo tables to txn.KV. Its methods do raw
// table operations only — no eviction, no stripe management — because the
// txn layer calls them while already holding the key's stripe.
type cacheKV struct{ c *Cache }

func (k cacheKV) Load(key string) (string, bool) {
	e, ok := k.c.shards[k.c.shardFor(key)].table.Get(key)
	if !ok || e.expired(time.Now().UnixNano()) {
		return "", false
	}
	return e.val, true
}

func (k cacheKV) Store(key, val string, expireAt int64, keepTTL bool) error {
	sh := k.c.shards[k.c.shardFor(key)]
	if keepTTL {
		// Counter updates inherit the entry's current expiry; a fresh
		// counter never expires until a SETEX says otherwise.
		expireAt = 0
		if cur, ok := sh.table.Get(key); ok && !cur.expired(time.Now().UnixNano()) {
			expireAt = cur.expireAt
		}
	}
	// Every store — plain SET, counter fold, CAS swap, transaction
	// commit — funnels through here with the key's stripe held, so
	// versioning this one site makes per-key versions monotonic, and the
	// mirror enqueue below sees writes in stripe order.
	e := entry{val: val, expireAt: expireAt, ver: k.c.nextVersion()}
	switch err := sh.table.Insert(key, e); err {
	case nil:
		sh.pushRing(key)
		k.c.replEnqueueSet(key, e)
		return nil
	case generic.ErrExists:
		// Overwrite in place; no new slot is consumed, so the ring keeps
		// its existing record for this key.
		if err := sh.table.Upsert(key, e); err != nil {
			return err
		}
		k.c.replEnqueueSet(key, e)
		return nil
	default:
		// ErrFull: the caller must evict outside the stripe and retry —
		// deleting victims here would mutate other keys' entries without
		// bumping their stripe versions.
		return errShardFull
	}
}

func (k cacheKV) Delete(key string) bool {
	ok := k.c.shards[k.c.shardFor(key)].table.Delete(key)
	if ok {
		k.c.replEnqueueDel(key, k.c.nextVersion())
	}
	return ok
}

// setLogger swaps the cache's logger; called before the cache is shared.
func (c *Cache) setLogger(log *slog.Logger) {
	if log != nil {
		c.log = log
	}
}

// shardFor maps a key to its shard index.
func (c *Cache) shardFor(key string) int {
	return int(maphash.String(c.seed, key) & c.mask)
}

// shardForBytes is shardFor without the string: maphash.Bytes is
// documented to agree with maphash.String on the same bytes, so both
// forms of a key land on the same shard.
func (c *Cache) shardForBytes(key []byte) int {
	return int(maphash.Bytes(c.seed, key) & c.mask)
}

// Len returns the number of stored entries (including not-yet-expired
// ones awaiting the sweeper).
func (c *Cache) Len() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.table.Len()
	}
	return n
}

// Cap returns the total slot capacity across shards.
func (c *Cache) Cap() uint64 {
	var n uint64
	for _, s := range c.shards {
		n += s.table.Cap()
	}
	return n
}

// Stats exposes the cache's counters.
func (c *Cache) Stats() *stats { return c.stats }

// SetFailpoint installs a fault-injection hook (see faultinject.FailOp)
// consulted before each SET; its error is returned to the client as if
// the table itself had failed, e.g. a forced ErrServerFull. Install
// before serving traffic; nil disables.
func (c *Cache) SetFailpoint(f func(op, key string) error) { c.failOp = f }

// Set stores key=val with the given TTL (0 = no expiry). When the shard
// is full it evicts entries in approximate insertion order; if even that
// fails it returns ErrServerFull.
func (c *Cache) Set(key, val string, ttl time.Duration) error {
	return c.SetTraced(key, val, ttl, nil)
}

// SetTraced is Set with stage attribution recorded into sp (nil-safe;
// the plain verbs delegate here with nil, which records nothing).
//
//cuckoo:hotpath the SET path allocates exactly what it stores
func (c *Cache) SetTraced(key, val string, ttl time.Duration, sp *obs.Span) error {
	if f := c.failOp; f != nil {
		//lint:allow cuckoovet:allocfree fault-injection hook: nil in production, installed only by tests
		if err := f("SET", key); err != nil {
			return err
		}
	}
	var expireAt int64
	if ttl > 0 {
		expireAt = time.Now().Add(ttl).UnixNano()
	}
	si := c.shardFor(key)
	err := c.setEntry(key, entry{val: val, expireAt: expireAt}, sp)
	if err == nil {
		c.stats.sets.Add(si, 1)
	}
	c.driveMigration(si, sp)
	return err
}

// setEntry is the write loop shared by SET and snapshot/handoff loads:
// attempt the insert under the key's stripe; on a full shard, evict
// victims outside the stripe (each under its own stripe, so versions
// stay honest) and retry. Escalate — evicting one entry frees a slot
// *somewhere*, but not necessarily one reachable from this key's two
// candidate buckets, so each retry evicts one more victim than the last
// to open up the cuckoo graph.
func (c *Cache) setEntry(key string, e entry, sp *obs.Span) error {
	si := c.shardFor(key)
	for tries := 0; ; tries++ {
		err := c.txn.SetSpan(key, e.val, e.expireAt, sp)
		if !errors.Is(err, errShardFull) {
			return err
		}
		if tries >= maxEvictTries {
			return ErrServerFull
		}
		t0 := sp.Begin()
		for n := 0; n <= tries; n++ {
			if !c.evictOne(si) {
				sp.End(obs.StageEvict, t0)
				return ErrServerFull
			}
		}
		sp.End(obs.StageEvict, t0)
	}
}

// Incr atomically adds delta to the counter at key (missing keys count
// from zero), evicting on a full shard like SET. hint spreads split-mode
// updates across delta shards; pass a stable per-connection value. The
// new count is intentionally not returned — see txn.Store.Incr.
func (c *Cache) Incr(key string, delta int64, hint uint64) error {
	return c.IncrTraced(key, delta, hint, nil)
}

// IncrTraced is Incr with stage attribution recorded into sp.
func (c *Cache) IncrTraced(key string, delta int64, hint uint64, sp *obs.Span) error {
	if f := c.failOp; f != nil {
		if err := f("INCR", key); err != nil {
			return err
		}
	}
	si := c.shardFor(key)
	defer c.driveMigration(si, sp)
	for tries := 0; ; tries++ {
		err := c.txn.IncrSpan(key, delta, hint, sp)
		if !errors.Is(err, errShardFull) {
			if err == nil {
				c.stats.incrs.Add(si, 1)
			}
			return err
		}
		if tries >= maxEvictTries {
			return ErrServerFull
		}
		t0 := sp.Begin()
		for n := 0; n <= tries; n++ {
			if !c.evictOne(si) {
				sp.End(obs.StageEvict, t0)
				return ErrServerFull
			}
		}
		sp.End(obs.StageEvict, t0)
	}
}

// MaxUpdate atomically raises the counter at key to n if larger.
func (c *Cache) MaxUpdate(key string, n int64, hint uint64) error {
	return c.MaxUpdateTraced(key, n, hint, nil)
}

// MaxUpdateTraced is MaxUpdate with stage attribution recorded into sp.
func (c *Cache) MaxUpdateTraced(key string, n int64, hint uint64, sp *obs.Span) error {
	si := c.shardFor(key)
	defer c.driveMigration(si, sp)
	for tries := 0; ; tries++ {
		err := c.txn.MaxUpdateSpan(key, n, hint, sp)
		if !errors.Is(err, errShardFull) {
			if err == nil {
				c.stats.incrs.Add(si, 1)
			}
			return err
		}
		if tries >= maxEvictTries {
			return ErrServerFull
		}
		t0 := sp.Begin()
		for n := 0; n <= tries; n++ {
			if !c.evictOne(si) {
				sp.End(obs.StageEvict, t0)
				return ErrServerFull
			}
		}
		sp.End(obs.StageEvict, t0)
	}
}

// CAS replaces key's value only if it currently equals old. A store on
// an existing key consumes no new slot, so no eviction loop is needed.
func (c *Cache) CAS(key, old, newVal string) (txn.CASResult, error) {
	return c.CASTraced(key, old, newVal, nil)
}

// CASTraced is CAS with stage attribution recorded into sp.
func (c *Cache) CASTraced(key, old, newVal string, sp *obs.Span) (txn.CASResult, error) {
	si := c.shardFor(key)
	c.stats.cass.Add(si, 1)
	res, err := c.txn.CASSpan(key, old, newVal, sp)
	c.driveMigration(si, sp)
	return res, err
}

// Exec runs a MULTI/EXEC transaction. A write that lands on a full shard
// cannot evict at commit time (the commit holds the transaction's
// stripes; deleting a victim there would bump other keys' versions
// mid-validation), and the whole transaction cannot be re-run after a
// partial apply — so full-shard failures are repaired afterwards on the
// per-op evict-and-retry paths instead.
func (c *Cache) Exec(ops []txn.Op) []txn.Result {
	return c.ExecTraced(ops, nil)
}

// ExecTraced is Exec with stage attribution (OCC retries as
// StageTxnRetry) recorded into sp.
func (c *Cache) ExecTraced(ops []txn.Op, sp *obs.Span) []txn.Result {
	res, _ := c.txn.ExecSpan(ops, sp)
	c.repairFullWrites(ops, res)
	if len(ops) > 0 {
		// One bounded batch per transaction, charged to the first key's
		// shard — enough to keep migration moving under EXEC-only load.
		c.driveMigration(c.shardFor(ops[0].Key), sp)
	}
	return res
}

// repairFullWrites re-applies transaction writes that failed at commit
// because their shard had no reachable free slot. Every op kind that can
// allocate a slot is safe to apply late: SET is blind (last writer wins)
// and INCR/MAXUPDATE are commutative, so an application just after the
// commit point is indistinguishable from the same op racing the
// transaction — and strictly better than the hard error it replaces.
// CAS only overwrites in place and GET/DEL never insert, so they cannot
// fail this way. When one key carries several buffered ops, the commit
// marked all of them failed and none applied, so re-running each in
// queue order rebuilds the same final value the transaction computed.
func (c *Cache) repairFullWrites(ops []txn.Op, res []txn.Result) {
	for i := range res {
		if res[i].Status != txn.StatusErr || res[i].Err != errShardFull.Error() {
			continue
		}
		var err error
		switch ops[i].Kind {
		case txn.OpSet:
			err = c.setEntry(ops[i].Key, entry{val: ops[i].Val, expireAt: ops[i].ExpireAt}, nil)
		case txn.OpIncr:
			err = c.Incr(ops[i].Key, ops[i].Delta, 0)
		case txn.OpMax:
			err = c.MaxUpdate(ops[i].Key, ops[i].Delta, 0)
		default:
			continue
		}
		if err == nil {
			res[i] = txn.Result{Status: txn.StatusOK}
		} else {
			res[i] = txn.Result{Status: txn.StatusErr, Err: err.Error()}
		}
	}
}

// pushRing records an inserted key as a future eviction victim. The ring
// has exactly table-capacity slots; if it wraps (possible because deleted
// keys leave stale records behind) the oldest record is dropped, which
// only makes eviction order more approximate, never incorrect.
func (s *shard) pushRing(key string) {
	s.mu.Lock()
	if s.tail-s.head == uint64(len(s.ring)) {
		s.head++
	}
	s.ring[s.tail%uint64(len(s.ring))] = key
	s.tail++
	s.mu.Unlock()
}

// popVictim removes and returns the oldest eviction-ring record.
func (s *shard) popVictim() (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.head == s.tail {
		return "", false
	}
	i := s.head % uint64(len(s.ring))
	victim := s.ring[i]
	s.ring[i] = "" // release the string for the GC
	s.head++
	return victim, true
}

// evictOne deletes the oldest ring entry that is still present, reporting
// whether a slot was freed. Stale records (keys already deleted or
// re-inserted elsewhere in the ring) are skipped for free. The delete
// runs under the victim's stripe — never the inserting key's — so the
// victim's version bump is honest and no two stripes are ever held.
//
//cuckoo:coldpath eviction runs only when a shard is full; the documented admission slow path
func (c *Cache) evictOne(si int) bool {
	s := c.shards[si]
	for {
		victim, ok := s.popVictim()
		if !ok {
			return false
		}
		removed := false
		c.txn.WithLock(victim, func() { removed = s.table.Delete(victim) })
		if removed {
			c.stats.evictions.Add(si, 1)
			// Eviction only happens when a shard is full, so this is off
			// the fast path even at debug verbosity.
			c.log.Debug("evicted entry", "shard", si, "key", victim)
			return true
		}
	}
}

// Get returns the live value for key. Expired entries are deleted lazily
// and reported as misses, so a key never outlives its TTL from a client's
// point of view even if the sweeper has not run yet.
func (c *Cache) Get(key string) (string, bool) {
	return c.GetTraced(key, nil)
}

// GetTraced is Get with the table probe attributed to sp as StageProbe.
func (c *Cache) GetTraced(key string, sp *obs.Span) (string, bool) {
	// Fold pending split deltas first so a read observes every
	// acknowledged commutative update (costs one atomic load when no
	// keys are split, which is the common state).
	c.txn.ReconcileKey(key)
	si := c.shardFor(key)
	s := c.shards[si]
	c.stats.gets.Add(si, 1)
	t0 := sp.Begin()
	e, ok := s.table.Get(key)
	sp.End(obs.StageProbe, t0)
	if ok && e.expired(time.Now().UnixNano()) {
		c.expireKey(si, key)
		ok = false
	}
	if !ok {
		c.stats.misses.Add(si, 1)
		return "", false
	}
	c.stats.hits.Add(si, 1)
	return e.val, true
}

// GetBytesTraced is GetTraced for a key still aliasing the connection
// read buffer: the probe hashes and compares the raw bytes
// (generic.GetBytes), so a hit or a miss — the entire steady-state GET
// path — never materializes a string. The rare branches that need an
// owned key (folding a hot split counter, lazily expiring a dead entry)
// pay the copy when they fire.
//
//cuckoo:hotpath the daemon's GET fast path; BENCH_hotalloc asserts 0 allocs/op
func (c *Cache) GetBytesTraced(key []byte, sp *obs.Span) (string, bool) {
	c.txn.ReconcileKeyBytes(key)
	si := c.shardForBytes(key)
	s := c.shards[si]
	c.stats.gets.Add(si, 1)
	t0 := sp.Begin()
	e, ok := generic.GetBytes(s.table, key)
	sp.End(obs.StageProbe, t0)
	if ok && e.expired(time.Now().UnixNano()) {
		//lint:allow cuckoovet:allocfree lazy expiry of a dead entry is rare and the deletion needs an owned key
		c.expireKey(si, string(key))
		ok = false
	}
	if !ok {
		c.stats.misses.Add(si, 1)
		return "", false
	}
	c.stats.hits.Add(si, 1)
	return e.val, true
}

// TTL returns the remaining lifetime of key: (d, true) with d > 0 for an
// expiring entry, (0, true) for a persistent one, (0, false) for a miss.
func (c *Cache) TTL(key string) (time.Duration, bool) {
	si := c.shardFor(key)
	e, ok := c.shards[si].table.Get(key)
	if !ok {
		return 0, false
	}
	if e.expireAt == 0 {
		return 0, true
	}
	d := time.Duration(e.expireAt - time.Now().UnixNano())
	if d <= 0 {
		c.expireKey(si, key)
		return 0, false
	}
	return d, true
}

// Delete removes key, reporting whether it was present and live.
func (c *Cache) Delete(key string) bool {
	return c.DeleteTraced(key, nil)
}

// DeleteTraced is Delete with lock wait and the removal probe
// attributed to sp.
func (c *Cache) DeleteTraced(key string, sp *obs.Span) bool {
	si := c.shardFor(key)
	s := c.shards[si]
	c.stats.dels.Add(si, 1)
	ok := false
	c.txn.WithLockSpan(key, sp, func() {
		e, found := s.table.Get(key)
		switch {
		case !found:
		case e.expired(time.Now().UnixNano()):
			// An expired-but-unswept entry must look deleted-as-miss,
			// not OK.
			if s.table.Delete(key) {
				c.stats.expired.Add(si, 1)
			}
		default:
			ok = s.table.Delete(key)
			if ok {
				// Client-visible deletes mirror to the alternate copy;
				// expiries do not (each replica holds the same absolute
				// expireAt and lapses on its own).
				c.replEnqueueDel(key, c.nextVersion())
			}
		}
	})
	c.driveMigration(si, sp)
	return ok
}

// GetVBytesTraced is GetBytesTraced returning the entry's replication
// version alongside the value, for the GETV verb: clients compare the
// version against the newest one they have observed for the key, so a
// lagging replica can never shadow a newer primary write.
//
//cuckoo:hotpath the versioned GET path shares the 0-alloc probe with GetBytesTraced
func (c *Cache) GetVBytesTraced(key []byte, sp *obs.Span) (string, uint64, bool) {
	c.txn.ReconcileKeyBytes(key)
	si := c.shardForBytes(key)
	s := c.shards[si]
	c.stats.gets.Add(si, 1)
	t0 := sp.Begin()
	e, ok := generic.GetBytes(s.table, key)
	sp.End(obs.StageProbe, t0)
	if ok && e.expired(time.Now().UnixNano()) {
		//lint:allow cuckoovet:allocfree lazy expiry of a dead entry is rare and the deletion needs an owned key
		c.expireKey(si, string(key))
		ok = false
	}
	if !ok {
		c.stats.misses.Add(si, 1)
		return "", 0, false
	}
	c.stats.hits.Add(si, 1)
	return e.val, e.ver, true
}

// versionOf reports the stored version word for key (0 when absent).
// SETV reads its own write back through here; a concurrent later write
// may already have replaced the entry, in which case the later version
// is returned — which only tightens the client's monotonic floor.
func (c *Cache) versionOf(key string) uint64 {
	e, ok := c.shards[c.shardFor(key)].table.Get(key)
	if !ok {
		return 0
	}
	return e.ver
}

// Lease-probe outcomes: a live hit, an expired-but-unswept copy the
// server may serve stale while a fill is in flight, or nothing at all.
const (
	probeLive = iota
	probeStale
	probeAbsent
)

// leaseProbe is the LEASE verb's read: like GetVBytesTraced, but an
// expired entry is reported as probeStale instead of being lazily
// deleted — the whole point of stale-while-revalidate is that the dead
// copy stays servable until the lease winner refills it (the background
// sweeper still reclaims it eventually, bounding the stale window).
func (c *Cache) leaseProbe(key []byte, sp *obs.Span) (val string, ver uint64, state int) {
	c.txn.ReconcileKeyBytes(key)
	si := c.shardForBytes(key)
	s := c.shards[si]
	c.stats.gets.Add(si, 1)
	t0 := sp.Begin()
	e, ok := generic.GetBytes(s.table, key)
	sp.End(obs.StageProbe, t0)
	switch {
	case !ok:
		c.stats.misses.Add(si, 1)
		return "", 0, probeAbsent
	case e.expired(time.Now().UnixNano()):
		c.stats.misses.Add(si, 1)
		return e.val, e.ver, probeStale
	default:
		c.stats.hits.Add(si, 1)
		return e.val, e.ver, probeLive
	}
}

// expireKey removes an entry observed to be expired, re-checking under
// the key's stripe so a concurrent re-SET of the same key is never
// deleted (the re-SET holds the same stripe). It reports whether an
// entry was actually removed.
//
//cuckoo:coldpath lazy expiry fires once per dead entry observed; never on the live-hit path
func (c *Cache) expireKey(si int, key string) bool {
	s := c.shards[si]
	removed := false
	c.txn.WithLock(key, func() {
		if e, ok := s.table.Get(key); ok && e.expired(time.Now().UnixNano()) {
			removed = s.table.Delete(key)
		}
	})
	if removed {
		c.stats.expired.Add(si, 1)
	}
	return removed
}
