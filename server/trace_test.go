package server

import (
	"fmt"
	"log/slog"
	"net"
	"strings"
	"testing"
	"time"
)

// bufLogger pairs a goroutine-safe capture buffer (metrics_test.go's
// syncBuffer) with a debug-level text logger.
func bufLogger() (*syncBuffer, *slog.Logger) {
	buf := &syncBuffer{}
	return buf, slog.New(slog.NewTextHandler(buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

func TestTraceWireParsing(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	wantTraceErr := "ERR trace wants: TRACE <id (1..64 bytes)> <command...>"
	cases := []struct{ req, want string }{
		// The prefix is transparent to execution.
		{"TRACE abc123 SET k v", "OK"},
		{"TRACE ffeeddcc GET k", "VALUE v"},
		{"trace lower GET k", "VALUE v"}, // verb folding applies to TRACE too
		{"TRACE " + strings.Repeat("i", 64) + " GET k", "VALUE v"},
		// Malformed prefixes.
		{"TRACE", wantTraceErr},                                       // no id, no command
		{"TRACE id-only", wantTraceErr},                               // id but no command
		{"TRACE " + strings.Repeat("i", 65) + " GET k", wantTraceErr}, // id too long
		{"TRACE x TRACE y GET k", wantTraceErr},                       // prefix is legal exactly once
		// The wrapped command still gets its own errors.
		{"TRACE t BOGUS x", "ERR unknown command"},
		{"TRACE t SET onlykey", "ERR wrong number of arguments"},
	}
	for _, tc := range cases {
		if got := c.roundTrip(tc.req); got != tc.want {
			t.Errorf("%q -> %q, want %q", tc.req, got, tc.want)
		}
	}
}

func TestHotKeysVerbValidation(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	// A fresh server tracks nothing: the reply is just the terminator.
	if got := c.roundTrip("HOTKEYS"); got != "END" {
		t.Errorf("HOTKEYS on idle server -> %q, want END", got)
	}

	wantErr := "ERR hotkeys wants: HOTKEYS [count (1..128)]"
	for _, req := range []string{"HOTKEYS 0", "HOTKEYS 129", "HOTKEYS -1", "HOTKEYS x", "HOTKEYS 5 extra"} {
		if got := c.roundTrip(req); got != wantErr {
			t.Errorf("%q -> %q, want %q", req, got, wantErr)
		}
	}
}

func TestHotKeysRanksSampledTraffic(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	// Hot-key touches happen on sampled requests only (1 in 16 per
	// connection, starting at request 0). 16 groups of ten GETs on the hot
	// key followed by one unique cold key put samples 0,16,...,160 on the
	// stream; solving 16k ≡ 10 (mod 11) shows exactly one sample (k=2,
	// request 32) lands on a cold key, so the sketch must hold hot=10 and
	// cold2=1.
	for g := 0; g < 16; g++ {
		for i := 0; i < 10; i++ {
			if got := c.roundTrip("GET hot"); got != "MISS" {
				t.Fatalf("GET hot -> %q", got)
			}
		}
		if got := c.roundTrip(fmt.Sprintf("GET cold%d", g)); got != "MISS" {
			t.Fatalf("GET cold%d -> %q", g, got)
		}
	}
	c.send("HOTKEYS 5\n")
	var lines []string
	for {
		line := c.readLine()
		if line == "END" {
			break
		}
		lines = append(lines, line)
	}
	if len(lines) != 2 {
		t.Fatalf("HOTKEYS returned %d keys %v, want 2", len(lines), lines)
	}
	if lines[0] != "HOTKEY 10 hot" {
		t.Errorf("hottest line = %q, want HOTKEY 10 hot", lines[0])
	}
	if lines[1] != "HOTKEY 1 cold2" {
		t.Errorf("second line = %q, want HOTKEY 1 cold2", lines[1])
	}

	// HOTKEYS 1 truncates to the single hottest key.
	c.send("HOTKEYS 1\n")
	if got := c.readLine(); got != "HOTKEY 10 hot" {
		t.Errorf("HOTKEYS 1 -> %q, want HOTKEY 10 hot", got)
	}
	if got := c.readLine(); got != "END" {
		t.Errorf("HOTKEYS 1 terminator = %q, want END", got)
	}
}

// TestSlowOpsCaptureEveryRequest is the sampling-bypass regression: with a
// threshold armed, every request is timed, so no slow op can hide in the
// 15-of-16 unsampled slots.
func TestSlowOpsCaptureEveryRequest(t *testing.T) {
	s := startServer(t, Config{SlowOpThreshold: time.Nanosecond})
	c := dialRaw(t, s)

	const n = 40 // deliberately not a multiple of 16
	for i := 0; i < n; i++ {
		if got := c.roundTrip(fmt.Sprintf("TRACE trace%d SET k%d v", i, i)); got != "OK" {
			t.Fatalf("SET %d -> %q", i, got)
		}
	}
	if got := s.cache.stats.slowOps.Load(); got < n {
		t.Errorf("slow_ops = %d, want >= %d (every request must be timed when -slow-op is armed)", got, n)
	}
	// The newest slow traces carry the wire IDs.
	snap := s.cache.stats.slowTraces.Snapshot()
	if len(snap) == 0 {
		t.Fatal("no slow traces recorded")
	}
	if got := snap[len(snap)-1].ID; got != fmt.Sprintf("trace%d", n-1) {
		t.Errorf("newest slow trace ID = %q, want trace%d", got, n-1)
	}
}

// TestTraceIDPropagatesAcrossMigrate is the cross-node acceptance check:
// one traced MIGRATE must put the same trace ID in the source's migrate
// log and the destination's slow-op log (the HANDOFF it receives carries
// the forwarded TRACE prefix).
func TestTraceIDPropagatesAcrossMigrate(t *testing.T) {
	bufA, logA := bufLogger()
	bufB, logB := bufLogger()
	a := startServer(t, Config{Logger: logA})
	b := startServer(t, Config{Logger: logB, SlowOpThreshold: time.Nanosecond})
	addrA, addrB := a.Addr().String(), b.Addr().String()
	ring := []string{addrA, addrB}

	ca := dialRaw(t, a)
	const n = 8
	for i := 0; i < n; i++ {
		if got := ca.roundTrip(fmt.Sprintf("SET mig%d v%d", i, i)); got != "OK" {
			t.Fatalf("SET mig%d -> %q", i, got)
		}
	}
	req := "TRACE deadbeef42 " + migrateCmd("shed", addrB, addrA, 7, 0, ring)
	if got := ca.roundTrip(req); got != fmt.Sprintf("MIGRATED %d", n) {
		t.Fatalf("traced migrate -> %q, want MIGRATED %d", got, n)
	}

	if logs := bufA.String(); !strings.Contains(logs, "trace=deadbeef42") {
		t.Errorf("source migrate log missing trace ID:\n%s", logs)
	}
	if logs := bufB.String(); !strings.Contains(logs, "trace=deadbeef42") {
		t.Errorf("destination slow-op log missing forwarded trace ID:\n%s", logs)
	}
	// The flight recorders on both nodes remember the traced hop.
	foundA, foundB := false, false
	for _, rec := range a.Flight().Snapshot() {
		if rec.Trace() == "deadbeef42" && rec.Verb == "MIGRATE" {
			foundA = true
		}
	}
	for _, rec := range b.Flight().Snapshot() {
		if rec.Trace() == "deadbeef42" && rec.Verb == "HANDOFF" {
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Errorf("flight records missing traced hop: source=%v dest=%v", foundA, foundB)
	}
}

// TestFlightDumpOnConnectionShed forces the accept-time shed path and
// checks the incident dump fires with the recent-operation tail.
func TestFlightDumpOnConnectionShed(t *testing.T) {
	buf, logger := bufLogger()
	s := startServer(t, Config{MaxConns: 1, Logger: logger})
	c := dialRaw(t, s)
	if got := c.roundTrip("SET seen v"); got != "OK" {
		t.Fatalf("SET -> %q", got)
	}

	// The second connection is over the limit: shed with ERR busy, then
	// closed.
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	reply := make([]byte, 64)
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	k, err := nc.Read(reply)
	if err != nil {
		t.Fatalf("shed connection read: %v", err)
	}
	if got := string(reply[:k]); !strings.HasPrefix(got, "ERR busy") {
		t.Fatalf("shed reply = %q, want ERR busy", got)
	}

	logs := buf.String()
	if !strings.Contains(logs, "flight recorder dump") || !strings.Contains(logs, "connection shed") {
		t.Errorf("shed did not dump the flight recorder:\n%s", logs)
	}
	if !strings.Contains(logs, "[SET ok") {
		t.Errorf("flight dump missing the recent SET:\n%s", logs)
	}
}
