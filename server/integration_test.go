package server_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cuckoohash/client"
	"cuckoohash/server"
)

// TestIntegrationMixedWorkload drives a loopback daemon with the pooled
// pipelined client from 8 goroutines running a SET/GET/DEL/TTL-expiry
// mix, then cross-checks the server's counters against what the clients
// observed and verifies the graceful drain leaves no connection reset.
func TestIntegrationMixedWorkload(t *testing.T) {
	srv, err := server.New(server.Config{
		Addr:          "127.0.0.1:0",
		Shards:        4,
		SlotsPerShard: 1 << 12,
		SweepInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	const (
		workers = 8
		keysPer = 300
	)
	pool := client.NewPool(srv.Addr().String(), workers)
	defer pool.Close()

	var wantHits, wantMisses atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := runWorker(pool, w, keysPer, &wantHits, &wantMisses); err != nil {
				errs <- fmt.Errorf("worker %d: %w", w, err)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Server-side counters must agree exactly with the clients' view.
	c, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(c)
	if got, want := stats["hits"], fmt.Sprint(wantHits.Load()); got != want {
		t.Errorf("server hits = %s, clients observed %s", got, want)
	}
	if got, want := stats["misses"], fmt.Sprint(wantMisses.Load()); got != want {
		t.Errorf("server misses = %s, clients observed %s", got, want)
	}
	if stats["expired"] == "0" {
		t.Error("no entries expired despite TTL traffic")
	}

	// Graceful drain: every connection is idle, so Shutdown must finish
	// within the deadline and close each with FIN, not RST. A passive
	// read on an idle raw connection observes exactly that: io.EOF for a
	// clean close, ECONNRESET for an abortive one.
	idle, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	// One round-trip ensures the server has accepted and is tracking the
	// connection before the drain starts.
	if _, err := idle.Write([]byte("GET warmup\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := idle.Read(buf); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown did not drain: %v", err)
	}
	if err := <-serveErr; err != server.ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
	idle.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := idle.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("post-drain read: got %v, want io.EOF", err)
	}
	if nc, err := net.Dial("tcp", srv.Addr().String()); err == nil {
		nc.Close()
		t.Error("server still accepting after drain")
	}
}

// runWorker performs this goroutine's operation mix, tallying the GET
// hits and misses it expects the server to have counted.
func runWorker(pool *client.Pool, w, keysPer int, hits, misses *atomic.Uint64) error {
	c, err := pool.Get()
	if err != nil {
		return err
	}
	defer pool.Put(c)

	key := func(k int) string { return fmt.Sprintf("w%d-k%d", w, k) }

	// Phase 1: pipelined SETs; every 10th key gets a short TTL.
	for k := 0; k < keysPer; k++ {
		ttl := time.Duration(0)
		if k%10 == 0 {
			ttl = 30 * time.Millisecond
		}
		if err := c.QueueSet(key(k), fmt.Sprintf("v%d", k), ttl); err != nil {
			return err
		}
		if c.Pending() == 32 || k == keysPer-1 {
			reps, err := c.Flush()
			if err != nil {
				return err
			}
			for _, rep := range reps {
				if rep.Err != nil {
					return rep.Err
				}
			}
		}
	}

	// Phase 2: pipelined GETs of every persistent key — all hits.
	for k := 0; k < keysPer; k++ {
		if k%10 == 0 {
			continue
		}
		if err := c.QueueGet(key(k)); err != nil {
			return err
		}
	}
	reps, err := c.Flush()
	if err != nil {
		return err
	}
	for i, rep := range reps {
		if rep.Err != nil || !rep.Found {
			return fmt.Errorf("GET %d: found=%v err=%v", i, rep.Found, rep.Err)
		}
	}
	hits.Add(uint64(len(reps)))

	// Phase 3: wait out the TTLs, then every TTL'd key must be a miss
	// (whether the sweeper or lazy expiry gets it first).
	time.Sleep(60 * time.Millisecond)
	for k := 0; k < keysPer; k += 10 {
		v, ok, err := c.Get(key(k))
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("key %s survived its TTL (value %q)", key(k), v)
		}
		misses.Add(1)
	}

	// Phase 4: DELs — present keys report found, re-DELs report miss
	// (DEL is not a GET, so the hit/miss counters are unaffected).
	for k := 1; k < keysPer; k += 50 {
		found, err := c.Del(key(k))
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("DEL %s: not found", key(k))
		}
		found, err = c.Del(key(k))
		if err != nil {
			return err
		}
		if found {
			return fmt.Errorf("second DEL %s: reported found", key(k))
		}
		if _, ok, err := c.Get(key(k)); err != nil {
			return err
		} else if ok {
			return fmt.Errorf("GET %s after DEL: still present", key(k))
		}
		misses.Add(1)
	}
	return nil
}
