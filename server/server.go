package server

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cuckoohash/generic"
	"cuckoohash/internal/faultinject"
	"cuckoohash/internal/obs"
	"cuckoohash/internal/replica"
)

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:11211").
	Addr string
	// Shards is the number of independent cuckoo tables the cache is
	// split into (rounded up to a power of two; default 8).
	Shards int
	// SlotsPerShard is each shard's fixed slot capacity (default 1<<16).
	// The cache is bounded: past this it evicts rather than grows.
	SlotsPerShard uint64
	// SweepInterval is how often the TTL sweeper scans for expired
	// entries (default 1s; negative disables the sweeper — expiry then
	// happens only lazily on access).
	SweepInterval time.Duration
	// SlowOpThreshold enables slow-op tracing: every request whose
	// service time (excluding network I/O) meets or exceeds it is counted
	// and logged with its op, key, duration, trace ID, and per-stage
	// breakdown. When set, every request is timed (slow ops are never
	// dropped by latency sampling); zero disables the per-request clock
	// on unsampled requests entirely.
	SlowOpThreshold time.Duration
	// Logger receives structured lifecycle, connection-error, and slow-op
	// logs. Nil discards everything.
	Logger *slog.Logger

	// MaxConns bounds concurrently served connections; past it new
	// connections are shed at accept time with "ERR busy" and closed,
	// so overload turns into fast client-visible rejection instead of
	// unbounded goroutine and fd growth. Zero means unlimited.
	MaxConns int
	// MaxInflight bounds requests executing against the cache at once
	// (STATS and QUIT are exempt); excess requests fail fast with
	// "ERR busy" rather than queueing behind a saturated table. Zero
	// means unlimited.
	MaxInflight int
	// IOTimeout bounds each response flush; a client that stops reading
	// for longer has its connection closed. Zero means no limit.
	IOTimeout time.Duration
	// IdleTimeout closes connections idle at a batch boundary for longer
	// than this. Zero means idle connections are kept forever.
	IdleTimeout time.Duration
	// FaultPlan, when non-nil, wraps the listener so accepted connections
	// inject the plan's deterministic faults (chaos testing only).
	FaultPlan *faultinject.Plan
	// SnapshotPath, when set, persists the cache there on drain and
	// restores it on Listen, so a restart keeps the keyspace warm.
	SnapshotPath string
	// TxnPhaseInterval is the split-counter phase tick (docs/TRANSACTIONS.md):
	// how often hot-key deltas are reconciled into the table and cooled-off
	// keys demoted back to the direct path. Default 50ms; negative disables
	// the ticker (reconciliation then happens only on reads and drains).
	TxnPhaseInterval time.Duration
}

func (c *Config) setDefaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:11211"
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.SlotsPerShard == 0 {
		c.SlotsPerShard = 1 << 16
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = time.Second
	}
	if c.TxnPhaseInterval == 0 {
		c.TxnPhaseInterval = 50 * time.Millisecond
	}
}

// Server is the cuckood daemon: a listener plus the sharded cache.
type Server struct {
	cfg    Config
	cache  *Cache
	log    *slog.Logger
	slowOp time.Duration

	ln        net.Listener
	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup // live connection handlers
	draining  atomic.Bool
	sweepStop chan struct{}
	inflight  chan struct{} // request-execution semaphore (nil = unlimited)
	snapOnce  sync.Once     // drain snapshot runs once even if Shutdown repeats

	// flight is the always-on flight recorder (docs/OBSERVABILITY.md):
	// a ring of recent op records served at /debug/flight and dumped to
	// the log on shed, slow-op, and panic paths. flightDumpAt rate-limits
	// the automatic log dumps to one per second.
	flight       *obs.Flight
	flightDumpAt atomic.Int64

	// leases is the miss-lease table (docs/REPLICATION.md): the LEASE
	// verb grants one client the right to fill a missing key while the
	// rest wait or serve stale; SET/DEL invalidate outstanding leases so
	// a delayed fill can never publish over fresher data.
	leases *replica.LeaseTable
}

// New creates a Server; call Listen then Serve (or ListenAndServe).
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	cache, err := NewCache(cfg.Shards, cfg.SlotsPerShard)
	if err != nil {
		return nil, err
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	cache.setLogger(log)
	s := &Server{
		cfg:       cfg,
		cache:     cache,
		log:       log,
		slowOp:    cfg.SlowOpThreshold,
		conns:     make(map[net.Conn]struct{}),
		sweepStop: make(chan struct{}),
		flight:    obs.NewFlight(flightShards, flightPerShard),
		leases:    replica.NewLeaseTable(0),
	}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	// Grow events land in the flight recorder as synthetic records so an
	// incident dump shows resize activity inline with the ops around it:
	// verb GROW:start / GROW:done, the shard index and bucket doubling
	// packed into the key-hash column, the remaining backlog as the
	// duration column (buckets, not time — grows have no single duration
	// by design; they are incremental).
	cache.growHook = func(shard int, ev generic.GrowEvent) {
		rec := obs.FlightRecord{
			Verb:    "GROW:" + ev.Kind.String(),
			Outcome: obs.OutcomeOK,
			KeyHash: uint64(shard)<<48 | ev.FromBuckets<<24 | ev.ToBuckets,
			TotalNs: int64(ev.Backlog),
		}
		s.flight.Record(uint64(shard), &rec)
	}
	return s, nil
}

// Cache exposes the underlying store, e.g. for in-process use or tests.
func (s *Server) Cache() *Cache { return s.cache }

// Flight recorder sizing: 16 shards × 64 records remembers the last ~1k
// operations — a few milliseconds of full-throttle traffic, which is the
// window an incident dump needs — in ~300 KB of fixed memory.
const (
	flightShards   = 16
	flightPerShard = 64
	// flightDumpOps is how many trailing records automatic log dumps
	// include; the full ring stays available at /debug/flight.
	flightDumpOps = 8
)

// Flight exposes the flight recorder, e.g. for the admin mux.
func (s *Server) Flight() *obs.Flight { return s.flight }

// dumpFlight writes the flight recorder's tail to the log, rate-limited
// to one dump per second so an overload storm cannot turn the recorder
// into a log flood.
func (s *Server) dumpFlight(reason string) {
	now := time.Now().UnixNano()
	last := s.flightDumpAt.Load()
	if now-last < int64(time.Second) || !s.flightDumpAt.CompareAndSwap(last, now) {
		return
	}
	s.log.Warn("flight recorder dump", "reason", reason,
		"recent_ops", s.flight.Summary(flightDumpOps))
}

// Listen binds the configured address and starts the TTL sweeper.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	if s.cfg.FaultPlan != nil {
		ln = s.cfg.FaultPlan.WrapListener(ln)
		s.log.Warn("fault injection armed", "plan", s.cfg.FaultPlan.String())
	}
	s.ln = ln
	if s.cfg.SnapshotPath != "" {
		if err := s.restoreSnapshot(); err != nil {
			ln.Close()
			return err
		}
	}
	if s.cfg.SweepInterval > 0 {
		go s.cache.sweeper(s.cfg.SweepInterval, s.sweepStop)
	}
	if s.cfg.TxnPhaseInterval > 0 {
		go s.txnPhaseTicker(s.cfg.TxnPhaseInterval, s.sweepStop)
	}
	s.log.Info("listening",
		"addr", ln.Addr().String(),
		"shards", len(s.cache.shards),
		"capacity", s.cache.Cap(),
		"sweep_interval", s.cfg.SweepInterval,
		"slow_op_threshold", s.slowOp)
	return nil
}

// Addr returns the bound listen address (valid after Listen).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until Shutdown or Close; it returns
// ErrServerClosed on a clean stop. Transient accept failures (ECONNABORTED,
// fd exhaustion, anything reporting itself temporary) are retried with
// capped exponential backoff instead of killing the accept loop — a burst
// of EMFILE under overload must degrade service, not end it. When MaxConns
// is reached, new connections are told "ERR busy" and closed immediately.
func (s *Server) Serve() error {
	var backoff time.Duration
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return ErrServerClosed
			}
			if isTemporaryAcceptErr(err) {
				if backoff == 0 {
					backoff = 5 * time.Millisecond
				} else if backoff *= 2; backoff > 500*time.Millisecond {
					backoff = 500 * time.Millisecond
				}
				s.cache.stats.acceptRetries.Add(1)
				s.log.Warn("accept failed; retrying", "err", err, "backoff", backoff)
				time.Sleep(backoff)
				continue
			}
			s.log.Error("accept failed", "err", err)
			return err
		}
		backoff = 0
		if s.cfg.MaxConns > 0 && s.cache.stats.connsActive.Load() >= int64(s.cfg.MaxConns) {
			s.cache.stats.connsShed.Add(1)
			s.dumpFlight("connection shed")
			shedConn(nc)
			continue
		}
		if !s.trackConn(nc) {
			nc.Close()
			return ErrServerClosed
		}
		go s.handleConn(nc)
	}
}

// isTemporaryAcceptErr classifies accept errors worth retrying: the
// listener is still healthy, only this accept failed. net.ErrClosed (the
// drain path) is never temporary.
func isTemporaryAcceptErr(err error) bool {
	if errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.ECONNABORTED) {
		return true
	}
	var ne net.Error
	//nolint:staticcheck // Temporary is deprecated but remains the accept-loop contract
	return errors.As(err, &ne) && ne.Temporary() && !errors.Is(err, net.ErrClosed)
}

// shedConn refuses an over-limit connection with a fast, bounded write so
// clients see an explicit busy rejection (retryable after backoff) rather
// than a silent close they might misread as a network fault.
func shedConn(nc net.Conn) {
	nc.SetWriteDeadline(time.Now().Add(time.Second))
	nc.Write([]byte("ERR busy\n"))
	nc.Close()
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// trackConn registers a live connection, refusing it when draining.
func (s *Server) trackConn(nc net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.conns[nc] = struct{}{}
	s.wg.Add(1)
	return true
}

// forgetConn closes and deregisters a connection.
func (s *Server) forgetConn(nc net.Conn) {
	nc.Close()
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
	s.wg.Done()
}

// Shutdown drains the server: it stops accepting, lets every connection
// finish (and flush) the batch it is processing, wakes connections that
// are idle in a blocking read, and waits for all handlers to exit. Each
// connection is closed by its own handler after its final flush, so a
// well-behaved client sees complete responses followed by EOF — never a
// reset. If ctx expires first, remaining connections are closed hard and
// the context error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining.Load()
	s.draining.Store(true)
	if first {
		close(s.sweepStop)
	}
	if s.ln != nil {
		s.ln.Close()
	}
	if first {
		s.log.Info("drain started", "conns", len(s.conns))
	}
	// Wake handlers blocked in Read; they observe draining and exit
	// cleanly. Handlers mid-batch ignore this until their next read.
	for nc := range s.conns {
		nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("drain complete")
		s.cache.txn.ReconcileAll()
		s.saveSnapshotOnce()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		remaining := len(s.conns)
		for nc := range s.conns {
			nc.Close()
		}
		s.mu.Unlock()
		<-done
		s.log.Warn("drain deadline expired; connections closed hard",
			"conns", remaining)
		s.cache.txn.ReconcileAll()
		s.saveSnapshotOnce()
		return ctx.Err()
	}
}

// txnPhaseTicker runs the split-counter phase clock: every interval it
// folds pending hot-key deltas into the table and demotes keys that have
// gone cold, so a key that stops being contended returns to the direct
// (read-your-write-fresh) path within a couple of ticks.
func (s *Server) txnPhaseTicker(interval time.Duration, stop chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.cache.txn.Tick()
		case <-stop:
			return
		}
	}
}

// saveSnapshotOnce persists the cache to SnapshotPath after the drain; all
// handlers have exited by now, so the snapshot is a quiescent image.
func (s *Server) saveSnapshotOnce() {
	if s.cfg.SnapshotPath == "" {
		return
	}
	s.snapOnce.Do(func() {
		if err := s.saveSnapshot(); err != nil {
			s.log.Error("snapshot save failed", "path", s.cfg.SnapshotPath, "err", err)
		}
	})
}

// Close shuts down without a drain deadline grace: equivalent to
// Shutdown with an already-expired context, minus the error.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}
