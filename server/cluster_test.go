package server

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"cuckoohash/internal/cluster"
)

// readClusterLines reads a CLUSTER response into a map.
func readClusterLines(t *testing.T, c *rawClient) map[string]string {
	t.Helper()
	out := map[string]string{}
	for {
		line := c.readLine()
		if line == "END" {
			return out
		}
		rest, ok := strings.CutPrefix(line, "CLUSTER ")
		if !ok {
			t.Fatalf("unexpected CLUSTER response line %q", line)
		}
		name, value, ok := strings.Cut(rest, " ")
		if !ok {
			t.Fatalf("malformed CLUSTER line %q", line)
		}
		out[name] = value
	}
}

func TestClusterVerb(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	if got := c.roundTrip("SET k1 v1"); got != "OK" {
		t.Fatalf("SET -> %q", got)
	}
	c.send("CLUSTER\n")
	info := readClusterLines(t, c)

	if info["addr"] != s.Addr().String() {
		t.Errorf("addr = %q, want %q", info["addr"], s.Addr())
	}
	if info["entries"] != "1" {
		t.Errorf("entries = %q, want 1", info["entries"])
	}
	load, err := strconv.ParseFloat(info["load"], 64)
	if err != nil || load <= 0 || load > 1 {
		t.Errorf("load = %q, want a fraction in (0, 1]", info["load"])
	}
	for _, k := range []string{"capacity", "migrated_in", "migrated_out", "handoffs", "migrate_failures"} {
		if _, ok := info[k]; !ok {
			t.Errorf("CLUSTER response missing %q", k)
		}
	}

	// CLUSTER takes no arguments.
	if got := c.roundTrip("CLUSTER extra"); got != "ERR wrong number of arguments" {
		t.Errorf("CLUSTER extra -> %q", got)
	}
}

// encodeHandoff builds a snapshot payload for the given key/value pairs.
func encodeHandoff(t *testing.T, kv map[string]string) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := newSnapEncoder(&buf)
	for k, v := range kv {
		enc.add(k, entry{val: v})
	}
	if err := enc.finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHandoffRoundtrip(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	kv := map[string]string{"alpha": "1", "beta": "2", "gamma": "3"}
	payload := encodeHandoff(t, kv)

	c.send(fmt.Sprintf("HANDOFF %d\n", len(payload)))
	c.send(string(payload))
	if got := c.readLine(); got != fmt.Sprintf("HANDOFF %d", len(kv)) {
		t.Fatalf("HANDOFF reply %q, want HANDOFF %d", got, len(kv))
	}
	for k, v := range kv {
		if got := c.roundTrip("GET " + k); got != "VALUE "+v {
			t.Errorf("GET %s -> %q, want VALUE %s", k, got, v)
		}
	}
	if got := s.cache.stats.migratedIn.Load(); got != uint64(len(kv)) {
		t.Errorf("migrated_in = %d, want %d", got, len(kv))
	}
	if got := s.cache.stats.handoffs.Load(); got != 1 {
		t.Errorf("handoffs = %d, want 1", got)
	}
}

func TestHandoffBadPayloadKeepsConnection(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	// A payload that is the declared length but not a valid snapshot must
	// be rejected without desyncing the stream: the next command still
	// gets a correct response on the same connection.
	junk := []byte("this is not a snapshot stream at all")
	c.send(fmt.Sprintf("HANDOFF %d\n", len(junk)))
	c.send(string(junk))
	if got := c.readLine(); !strings.HasPrefix(got, "ERR ") {
		t.Fatalf("bad handoff reply %q, want ERR", got)
	}
	if got := c.roundTrip("SET still-works yes"); got != "OK" {
		t.Fatalf("post-reject SET -> %q", got)
	}
	if got := s.cache.stats.handoffRejects.Load(); got != 1 {
		t.Errorf("handoff_rejects = %d, want 1", got)
	}
}

func TestHandoffOversizedClosesConnection(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	// A length past the bound is connection-fatal: the bytes behind the
	// line cannot be skipped, so the server answers ERR and closes.
	c.send(fmt.Sprintf("HANDOFF %d\n", handoffMaxBytes+1))
	if got := c.readLine(); !strings.HasPrefix(got, "ERR ") {
		t.Fatalf("oversized handoff reply %q, want ERR", got)
	}
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Error("connection still open after oversized HANDOFF, want closed")
	}
}

// migrateCmd renders a MIGRATE line for a ring built from the servers'
// listen addresses.
func migrateCmd(mode, dest, self string, seed uint64, max int, ring []string) string {
	return fmt.Sprintf("MIGRATE %s %s %s %d %d %s", mode, dest, self, seed, max, strings.Join(ring, ","))
}

func TestMigrateShedBetweenServers(t *testing.T) {
	a := startServer(t, Config{})
	b := startServer(t, Config{})
	addrA, addrB := a.Addr().String(), b.Addr().String()
	ring := []string{addrA, addrB}
	const seed = 42

	ca := dialRaw(t, a)
	const n = 64
	for i := 0; i < n; i++ {
		if got := ca.roundTrip(fmt.Sprintf("SET key%d val%d", i, i)); got != "OK" {
			t.Fatalf("SET key%d -> %q", i, got)
		}
	}

	// With two nodes every key has both as candidates, so shed mode (move
	// correctly-placed keys to their other candidate) moves everything up
	// to max.
	if got := ca.roundTrip(migrateCmd("shed", addrB, addrA, seed, 10, ring)); got != "MIGRATED 10" {
		t.Fatalf("bounded shed -> %q, want MIGRATED 10", got)
	}
	if got := a.cache.Len(); got != n-10 {
		t.Errorf("source entries after bounded shed = %d, want %d", got, n-10)
	}
	if got := b.cache.Len(); got != 10 {
		t.Errorf("dest entries after bounded shed = %d, want 10", got)
	}

	// Unlimited shed drains the rest; every key must remain reachable on B.
	rest := ca.roundTrip(migrateCmd("shed", addrB, addrA, seed, 0, ring))
	if rest != fmt.Sprintf("MIGRATED %d", n-10) {
		t.Fatalf("unbounded shed -> %q, want MIGRATED %d", rest, n-10)
	}
	cb := dialRaw(t, b)
	for i := 0; i < n; i++ {
		if got := cb.roundTrip(fmt.Sprintf("GET key%d", i)); got != fmt.Sprintf("VALUE val%d", i) {
			t.Errorf("GET key%d on dest -> %q", i, got)
		}
	}
	if got, want := a.cache.stats.migratedOut.Load(), uint64(n); got != want {
		t.Errorf("source migrated_out = %d, want %d", got, want)
	}
	if got, want := b.cache.stats.migratedIn.Load(), uint64(n); got != want {
		t.Errorf("dest migrated_in = %d, want %d", got, want)
	}
}

func TestMigrateHomeDrain(t *testing.T) {
	a := startServer(t, Config{})
	b := startServer(t, Config{})
	addrA, addrB := a.Addr().String(), b.Addr().String()
	const seed = 7

	ca := dialRaw(t, a)
	const n = 32
	for i := 0; i < n; i++ {
		if got := ca.roundTrip(fmt.Sprintf("SET dk%d v%d", i, i)); got != "OK" {
			t.Fatalf("SET dk%d -> %q", i, got)
		}
	}

	// Drain: the ring excludes self, so no key belongs here and home mode
	// qualifies everything toward the surviving candidate.
	drainRing := []string{addrB}
	if got := ca.roundTrip(migrateCmd("home", addrB, addrA, seed, 0, drainRing)); got != fmt.Sprintf("MIGRATED %d", n) {
		t.Fatalf("drain -> %q, want MIGRATED %d", got, n)
	}
	if got := a.cache.Len(); got != 0 {
		t.Errorf("source entries after drain = %d, want 0", got)
	}
	cb := dialRaw(t, b)
	for i := 0; i < n; i++ {
		if got := cb.roundTrip(fmt.Sprintf("GET dk%d", i)); got != fmt.Sprintf("VALUE v%d", i) {
			t.Errorf("GET dk%d on survivor -> %q", i, got)
		}
	}
}

func TestMigrateHomeSkipsOwnedKeys(t *testing.T) {
	// Three-node ring, but only the two endpoints are live servers; the
	// third member is a dead placeholder so some keys do not belong on A.
	a := startServer(t, Config{})
	b := startServer(t, Config{})
	addrA, addrB := a.Addr().String(), b.Addr().String()
	ring := []string{addrA, addrB, "203.0.113.1:9999"}
	const seed = 99

	r, err := cluster.New(ring, seed)
	if err != nil {
		t.Fatal(err)
	}

	ca := dialRaw(t, a)
	const n = 300
	wantMove := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("hk%d", i)
		if got := ca.roundTrip("SET " + key + " v"); got != "OK" {
			t.Fatalf("SET %s -> %q", key, got)
		}
		if !r.IsCandidate(key, addrA) && r.IsCandidate(key, addrB) {
			wantMove++
		}
	}
	if wantMove == 0 {
		t.Fatal("test needs at least one key homed away from A toward B")
	}

	got := ca.roundTrip(migrateCmd("home", addrB, addrA, seed, 0, ring))
	if got != fmt.Sprintf("MIGRATED %d", wantMove) {
		t.Errorf("home migrate -> %q, want MIGRATED %d", got, wantMove)
	}
	if gotLen := int(a.cache.Len()); gotLen != n-wantMove {
		t.Errorf("source entries = %d, want %d", gotLen, n-wantMove)
	}
}

func TestMigrateValidation(t *testing.T) {
	a := startServer(t, Config{})
	addrA := a.Addr().String()
	ca := dialRaw(t, a)

	cases := []struct{ req, wantPrefix string }{
		{"MIGRATE shed", "ERR migrate wants:"},
		{"MIGRATE nonsense d s 0 0 r", "ERR migrate wants:"},
		{"MIGRATE shed x:1 " + addrA + " 0 0 " + addrA, "ERR migrate destination is not in the ring"},
		{"MIGRATE shed " + addrA + " " + addrA + " 0 0 " + addrA, "ERR migrate destination equals self"},
	}
	for _, tc := range cases {
		if got := ca.roundTrip(tc.req); !strings.HasPrefix(got, tc.wantPrefix) {
			t.Errorf("%q -> %q, want prefix %q", tc.req, got, tc.wantPrefix)
		}
	}

	// An unreachable destination fails the migrate and bumps the failure
	// counter, but moves nothing.
	if got := ca.roundTrip("SET mk v"); got != "OK" {
		t.Fatal("SET failed")
	}
	dead := "127.0.0.1:1"
	ring := addrA + "," + dead
	if got := ca.roundTrip("MIGRATE shed " + dead + " " + addrA + " 0 0 " + ring); !strings.HasPrefix(got, "ERR ") {
		t.Errorf("migrate to dead node -> %q, want ERR", got)
	}
	if got := a.cache.stats.migrateFails.Load(); got != 1 {
		t.Errorf("migrate_failures = %d, want 1", got)
	}
	if got := ca.roundTrip("GET mk"); got != "VALUE v" {
		t.Errorf("key lost after failed migrate: GET mk -> %q", got)
	}
}

func TestMigrateSkipsExpired(t *testing.T) {
	a := startServer(t, Config{})
	b := startServer(t, Config{})
	addrA, addrB := a.Addr().String(), b.Addr().String()
	ring := []string{addrA, addrB}

	ca := dialRaw(t, a)
	if got := ca.roundTrip("SETEX dying 1 v"); got != "OK" {
		t.Fatal("SETEX failed")
	}
	if got := ca.roundTrip("SET living v"); got != "OK" {
		t.Fatal("SET failed")
	}
	time.Sleep(5 * time.Millisecond) // let the TTL pass

	if got := ca.roundTrip(migrateCmd("shed", addrB, addrA, 1, 0, ring)); got != "MIGRATED 1" {
		t.Errorf("shed with expired entry -> %q, want MIGRATED 1", got)
	}
	cb := dialRaw(t, b)
	if got := cb.roundTrip("GET dying"); got != "MISS" {
		t.Errorf("expired key resurrected on dest: %q", got)
	}
	if got := cb.roundTrip("GET living"); got != "VALUE v" {
		t.Errorf("live key missing on dest: %q", got)
	}
}
