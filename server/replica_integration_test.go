package server

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// startReplicatedPair launches two servers mirroring to each other over
// a two-node ring and returns them with their resolved addresses.
func startReplicatedPair(t *testing.T, seed uint64) (a, b *Server) {
	t.Helper()
	a = startServer(t, Config{Shards: 2, SlotsPerShard: 1 << 10, SweepInterval: -1})
	b = startServer(t, Config{Shards: 2, SlotsPerShard: 1 << 10, SweepInterval: -1})
	nodes := []string{a.Addr().String(), b.Addr().String()}
	if err := a.EnableReplication(nodes, seed, ""); err != nil {
		t.Fatal(err)
	}
	if err := b.EnableReplication(nodes, seed, ""); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// waitGetV polls GETV key on c until the reply satisfies ok, failing
// the test after two seconds. It returns the final reply line.
func waitGetV(t *testing.T, c *rawClient, key string, ok func(string) bool) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	var line string
	for {
		c.send("GETV " + key + "\n")
		line = c.readLine()
		if ok(line) {
			return line
		}
		if time.Now().After(deadline) {
			t.Fatalf("GETV %s never converged; last reply %q", key, line)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicationMirrorsWrites checks the tentpole end to end: writes
// accepted by one node of a two-node ring appear on the other with the
// same version word, and deletes propagate as versioned tombstones.
func TestReplicationMirrorsWrites(t *testing.T) {
	a, b := startReplicatedPair(t, 1)
	ca, cb := dialRaw(t, a), dialRaw(t, b)

	const n = 50
	vers := make(map[string]string, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("mirror%d", i)
		ca.send(fmt.Sprintf("SETV %s 0 val%d\n", key, i))
		rep := ca.readLine()
		var ver uint64
		if _, err := fmt.Sscanf(rep, "VER %d", &ver); err != nil || ver == 0 {
			t.Fatalf("SETV reply %q", rep)
		}
		vers[key] = rep[len("VER "):]
	}
	// Every key's alternate on a two-node ring is the other node, so all
	// fifty copies must converge on b with their origin version words.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("mirror%d", i)
		want := "VALUEV " + vers[key] + " " + fmt.Sprintf("val%d", i)
		got := waitGetV(t, cb, key, func(line string) bool { return line == want })
		if got != want {
			t.Fatalf("replica read %q, want %q", got, want)
		}
	}
	if d := a.ReplQueueDepth(); d != 0 {
		t.Fatalf("mirror log still holds %d entries after convergence", d)
	}

	// A delete on the origin becomes a tombstone on the replica.
	ca.send("DEL mirror0\n")
	if rep := ca.readLine(); rep != "OK" {
		t.Fatalf("DEL reply %q", rep)
	}
	waitGetV(t, cb, "mirror0", func(line string) bool { return line == "MISS" })
}

// TestReplicationConvergesBothDirections writes interleaved keys to both
// nodes and expects the union everywhere: the mirror is symmetric.
func TestReplicationConvergesBothDirections(t *testing.T) {
	a, b := startReplicatedPair(t, 7)
	ca, cb := dialRaw(t, a), dialRaw(t, b)
	for i := 0; i < 20; i++ {
		origin, key := ca, fmt.Sprintf("both%d", i)
		if i%2 == 1 {
			origin = cb
		}
		origin.send(fmt.Sprintf("SETV %s 0 v%d\n", key, i))
		if rep := origin.readLine(); !strings.HasPrefix(rep, "VER ") {
			t.Fatalf("SETV reply %q", rep)
		}
	}
	for i := 0; i < 20; i++ {
		key, val := fmt.Sprintf("both%d", i), fmt.Sprintf("v%d", i)
		match := func(line string) bool {
			return strings.HasPrefix(line, "VALUEV ") && strings.HasSuffix(line, " "+val)
		}
		waitGetV(t, ca, key, match)
		waitGetV(t, cb, key, match)
	}
}

// TestReplicaApplyStaleDrop pins the last-writer-wins contract of the
// inbound mirror verbs: an older REPLSET/REPLDEL never clobbers a newer
// local copy, and the reply says which way it went.
func TestReplicaApplyStaleDrop(t *testing.T) {
	s := startServer(t, Config{Shards: 1, SlotsPerShard: 1 << 10, SweepInterval: -1})
	c := dialRaw(t, s)

	steps := []struct{ send, want string }{
		{"REPLSET k 100 0 fresh", "OK"},
		{"REPLSET k 50 0 older", "STALE"},       // stale mirror write dropped
		{"GETV k", "VALUEV 100 fresh"},          // the newer copy survived
		{"REPLSET k 100 0 redelivery", "STALE"}, // equal version = redelivery, idempotent
		{"GETV k", "VALUEV 100 fresh"},
		{"REPLDEL k 50", "STALE"}, // stale tombstone dropped
		{"GETV k", "VALUEV 100 fresh"},
		{"REPLDEL k 100", "OK"}, // equal-version tombstone wins
		{"GETV k", "MISS"},
		{"REPLDEL k 100", "OK"}, // deleting an absent key is idempotent
		{"REPLSET k 200 0 back", "OK"},
		{"GETV k", "VALUEV 200 back"},
	}
	for _, st := range steps {
		c.send(st.send + "\n")
		if got := c.readLine(); got != st.want {
			t.Fatalf("%s → %q, want %q", st.send, got, st.want)
		}
	}
}

// TestReplicaSetOrdersLocalWrites checks the version-clock ratchet: a
// local write issued after a replica apply must order above it.
func TestReplicaSetOrdersLocalWrites(t *testing.T) {
	s := startServer(t, Config{Shards: 1, SlotsPerShard: 1 << 10, SweepInterval: -1})
	c := dialRaw(t, s)
	// A replica write far in the "future" of this node's clock.
	future := uint64(time.Now().Add(time.Hour).UnixNano())
	c.send(fmt.Sprintf("REPLSET k %d 0 remote\n", future))
	if got := c.readLine(); got != "OK" {
		t.Fatalf("REPLSET reply %q", got)
	}
	c.send("SETV k 0 local\n")
	rep := c.readLine()
	var ver uint64
	if _, err := fmt.Sscanf(rep, "VER %d", &ver); err != nil {
		t.Fatalf("SETV reply %q", rep)
	}
	if ver <= future {
		t.Fatalf("local write version %d does not order above applied replica version %d", ver, future)
	}
}

// TestLeaseProtocol drives the LEASE/SETL anti-herd state machine over
// the wire: one winner fills, losers get back-off hints, late and
// invalidated fills are rejected, and expired entries serve stale.
func TestLeaseProtocol(t *testing.T) {
	s := startServer(t, Config{Shards: 1, SlotsPerShard: 1 << 10, SweepInterval: -1})
	c1, c2 := dialRaw(t, s), dialRaw(t, s)

	// Miss: first LEASE wins a token, second gets a WAIT hint.
	c1.send("LEASE k\n")
	grant := c1.readLine()
	var token string
	var ttlMS int64
	if _, err := fmt.Sscanf(grant, "LEASE %s %d", &token, &ttlMS); err != nil || ttlMS <= 0 {
		t.Fatalf("first LEASE reply %q", grant)
	}
	c2.send("LEASE k\n")
	if rep := c2.readLine(); !strings.HasPrefix(rep, "WAIT ") {
		t.Fatalf("second LEASE reply %q, want WAIT hint", rep)
	}

	// The winner fills; waiters then read the filled value.
	c1.send("SETL k " + token + " 0 filled\n")
	fill := c1.readLine()
	if !strings.HasPrefix(fill, "VER ") {
		t.Fatalf("SETL reply %q", fill)
	}
	c2.send("LEASE k\n")
	if rep := c2.readLine(); rep != "VALUEV "+fill[len("VER "):]+" filled" {
		t.Fatalf("post-fill LEASE reply %q", rep)
	}

	// A fill with the wrong token is rejected and stores nothing.
	c1.send("LEASE k2\n")
	if _, err := fmt.Sscanf(c1.readLine(), "LEASE %s %d", &token, &ttlMS); err != nil {
		t.Fatal("second grant failed")
	}
	c1.send("SETL k2 abc123 0 bogus\n")
	if rep := c1.readLine(); rep != "MISS" {
		t.Fatalf("wrong-token SETL reply %q, want MISS", rep)
	}
	c1.send("GET k2\n")
	if rep := c1.readLine(); rep != "MISS" {
		t.Fatalf("rejected fill stored a value: %q", rep)
	}

	// A write racing the lease invalidates it: the late fill loses.
	c1.send("LEASE k3\n")
	if _, err := fmt.Sscanf(c1.readLine(), "LEASE %s %d", &token, &ttlMS); err != nil {
		t.Fatal("third grant failed")
	}
	c2.send("SET k3 racing\n")
	if rep := c2.readLine(); rep != "OK" {
		t.Fatalf("SET reply %q", rep)
	}
	c1.send("SETL k3 " + token + " 0 late\n")
	if rep := c1.readLine(); rep != "MISS" {
		t.Fatalf("late SETL reply %q, want MISS", rep)
	}
	c1.send("GET k3\n")
	if rep := c1.readLine(); rep != "VALUE racing" {
		t.Fatalf("k3 = %q, want the racing write", rep)
	}

	// Expired-but-present entries: the winner refreshes, others serve stale.
	c1.send("SETEX k4 1 oldcopy\n")
	if rep := c1.readLine(); rep != "OK" {
		t.Fatalf("SETEX reply %q", rep)
	}
	time.Sleep(5 * time.Millisecond) // let the 1ms TTL lapse
	c1.send("LEASE k4\n")
	if rep := c1.readLine(); !strings.HasPrefix(rep, "LEASE ") {
		t.Fatalf("expired-entry LEASE reply %q, want a grant", rep)
	}
	c2.send("LEASE k4\n")
	if rep := c2.readLine(); !strings.HasPrefix(rep, "STALE ") || !strings.HasSuffix(rep, " oldcopy") {
		t.Fatalf("expired-entry follower reply %q, want STALE …oldcopy", rep)
	}
}
