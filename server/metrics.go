package server

import (
	"fmt"
	"math"

	"cuckoohash/generic"
	"cuckoohash/internal/obs"
)

// latencyExportBuckets bounds the exported request-latency histogram at
// 2^40 ns (~18 minutes); anything slower lands in the automatic +Inf
// bucket. The internal histogram keeps all 64 power-of-two buckets.
const latencyExportBuckets = 40

// Collect implements obs.Collector: it renders the daemon's counters, the
// sampled request-latency histogram, and the cuckoo tables' internal probe
// counters (path-length distribution, restarts, stripe-lock contention) in
// Prometheus exposition order. Registered by cmd/cuckood on its admin
// endpoint; safe to call while the server is serving traffic, because every
// source it reads is a lock-free snapshot.
func (s *Server) Collect(m *obs.Metrics) {
	st := s.cache.stats

	m.Counter("cuckood_gets_total", "GET requests served.", float64(st.gets.Total()))
	m.Counter("cuckood_hits_total", "GET requests that found a live entry.", float64(st.hits.Total()))
	m.Counter("cuckood_misses_total", "GET requests that missed.", float64(st.misses.Total()))
	m.Counter("cuckood_sets_total", "SET/SETEX requests stored.", float64(st.sets.Total()))
	m.Counter("cuckood_dels_total", "DEL requests served.", float64(st.dels.Total()))
	m.Counter("cuckood_expired_total", "Entries removed because their TTL passed.", float64(st.expired.Total()))
	m.Counter("cuckood_evictions_total", "Entries evicted to make room on a full shard.", float64(st.evictions.Total()))
	m.Counter("cuckood_slow_requests_total", "Requests at or over the slow-op threshold.", float64(st.slowOps.Load()))
	m.Counter("cuckood_ttl_sweeps_total", "Completed TTL sweeper passes.", float64(st.sweeps.Load()))

	m.Gauge("cuckood_connections_active", "Currently open client connections.", float64(st.connsActive.Load()))
	m.Counter("cuckood_connections_total", "Client connections accepted since start.", float64(st.connsTotal.Load()))

	m.Counter("cuckood_accept_retries_total", "Temporary accept errors retried with backoff.", float64(st.acceptRetries.Load()))
	m.Counter("cuckood_connections_shed_total", "Connections refused at accept because of -max-conns.", float64(st.connsShed.Load()))
	m.Counter("cuckood_busy_rejections_total", "Requests fast-failed with ERR busy because of -max-inflight.", float64(st.busyRejected.Load()))
	m.Counter("cuckood_idle_closes_total", "Connections closed by the idle timeout.", float64(st.idleClosed.Load()))
	m.Counter("cuckood_io_timeouts_total", "Connections closed because a response flush timed out.", float64(st.ioTimeouts.Load()))
	m.Counter("cuckood_snapshot_saves_total", "Cache snapshots written on drain.", float64(st.snapSaves.Load()))
	m.Counter("cuckood_snapshot_loads_total", "Cache snapshots restored at startup.", float64(st.snapLoads.Load()))
	m.Gauge("cuckood_snapshot_last_save_seconds", "Duration of the most recent snapshot save.", float64(st.snapSaveNs.Load())/1e9)
	m.Gauge("cuckood_snapshot_last_load_seconds", "Duration of the most recent snapshot load.", float64(st.snapLoadNs.Load())/1e9)

	m.Counter("cuckood_cluster_migrated_keys_total", "Keys moved between nodes by MIGRATE/HANDOFF, by direction.",
		float64(st.migratedIn.Load()), "direction", "in")
	m.Counter("cuckood_cluster_migrated_keys_total", "Keys moved between nodes by MIGRATE/HANDOFF, by direction.",
		float64(st.migratedOut.Load()), "direction", "out")
	m.Counter("cuckood_cluster_handoffs_total", "Inbound bulk key transfers applied.", float64(st.handoffs.Load()))
	m.Counter("cuckood_cluster_handoff_rejects_total", "Inbound bulk key transfers rejected as invalid.", float64(st.handoffRejects.Load()))
	m.Counter("cuckood_cluster_migrate_failures_total", "Outbound migrations that failed before any key was removed.", float64(st.migrateFails.Load()))

	m.Gauge("cuckood_entries", "Stored entries across all shards.", float64(s.cache.Len()))
	m.Gauge("cuckood_capacity_slots", "Total slot capacity across all shards.", float64(s.cache.Cap()))
	for i, sh := range s.cache.shards {
		m.Gauge("cuckood_shard_entries", "Stored entries per shard.",
			float64(sh.table.Len()), "shard", fmt.Sprint(i))
	}

	s.collectLatency(m)
	s.collectTable(m)
	s.collectTxn(m)
	s.collectTrace(m)
	s.collectRepl(m)
	s.collectLease(m)
}

// collectRepl exports the cuckoorepl mirror-path series
// (docs/REPLICATION.md): how much write traffic is being mirrored to
// the alternate node, how far behind the mirror stream is, and how
// often the bulk catch-up path had to repair it.
func (s *Server) collectRepl(m *obs.Metrics) {
	st := s.cache.stats
	depth, dropped := s.cache.replLogTotals()

	m.Counter("cuckood_repl_enqueued_total", "Writes enqueued for mirroring to the alternate node.", float64(st.replEnqueued.Load()))
	m.Counter("cuckood_repl_mirrored_total", "Mirror log entries delivered to the alternate node.", float64(st.replMirrored.Load()))
	m.Counter("cuckood_repl_batches_total", "Mirror batches flushed to the alternate node.", float64(st.replBatches.Load()))
	m.Counter("cuckood_repl_send_failures_total", "Mirror sends that failed and latched a bulk catch-up.", float64(st.replSendFails.Load()))
	m.Counter("cuckood_repl_catchups_total", "Snapshot-format bulk catch-ups shipped after overflow or send failure.", float64(st.replCatchups.Load()))
	m.Counter("cuckood_repl_dropped_total", "Mirror log entries overwritten by drop-oldest overflow (repaired by catch-up).", float64(dropped))
	m.Counter("cuckood_repl_applied_total", "Inbound replicated writes applied, by result.",
		float64(st.replApplied.Load()), "result", "applied")
	m.Counter("cuckood_repl_applied_total", "Inbound replicated writes applied, by result.",
		float64(st.replStale.Load()), "result", "stale_dropped")
	m.Gauge("cuckood_repl_queue_depth", "Mutations buffered in the mirror logs awaiting delivery.", float64(depth))
	m.Gauge("cuckood_repl_lag_seconds", "Age of the oldest undelivered mirror entry at the last flush (0 when drained).", float64(st.replLagNs.Load())/1e9)
}

// collectLease exports the miss-lease series: grants tell you miss
// storms are being collapsed, waits/stale-serves tell you how the
// non-winning clients were handled, and rejects count fills that lost
// to a fresher write.
func (s *Server) collectLease(m *obs.Metrics) {
	st := s.cache.stats
	m.Counter("cuckood_lease_grants_total", "Fill leases granted to the first client missing a key.", float64(st.leaseGrants.Load()))
	m.Counter("cuckood_lease_waits_total", "LEASE requests told to wait for an in-flight fill.", float64(st.leaseWaits.Load()))
	m.Counter("cuckood_lease_stale_serves_total", "LEASE requests served an expired copy while a fill was in flight.", float64(st.leaseStaleServes.Load()))
	m.Counter("cuckood_lease_fills_total", "SETL fills accepted from lease winners.", float64(st.leaseFills.Load()))
	m.Counter("cuckood_lease_rejects_total", "SETL fills rejected because the lease was invalidated or expired.", float64(st.leaseRejects.Load()))
	m.Gauge("cuckood_lease_active", "Outstanding fill leases.", float64(s.leaseActive()))
}

// leaseActive is nil-safe for hand-built test servers.
func (s *Server) leaseActive() int64 {
	if s.leases == nil {
		return 0
	}
	return s.leases.Active()
}

// collectTrace exports the cuckootrace series (docs/OBSERVABILITY.md):
// the per-{stage,verb} latency attribution, the hot-key top-K, and the
// slow-request trace-ID exemplars.
func (s *Server) collectTrace(m *obs.Metrics) {
	st := s.cache.stats
	st.stages.Collect(m,
		"cuckood_stage_seconds",
		"Sampled request time attributed to pipeline stages, per verb.")
	for _, it := range st.HotKeys(10) {
		m.Gauge("cuckood_hot_key_count",
			"Sampled-request touches of the hottest keys (space-saving top-K; counts overestimate by at most the sketch error).",
			float64(it.Count), "key", it.Key)
	}
	st.slowTraces.Collect(m,
		"cuckood_slow_trace_seconds",
		"Duration of recent slow requests that carried a wire trace ID, as exemplars.")
}

// collectTxn exports the transaction subsystem's counters: OCC commit and
// abort traffic, the per-commit retry distribution, and the Doppel-style
// split-counter lifecycle (docs/TRANSACTIONS.md).
func (s *Server) collectTxn(m *obs.Metrics) {
	tx := s.cache.Txn().StatsSnapshot()

	m.Counter("cuckood_txn_commits_total", "EXEC transactions committed (optimistic or pessimistic).", float64(tx.Commits))
	m.Counter("cuckood_txn_aborts_total", "Optimistic EXEC attempts aborted by stripe-version validation.", float64(tx.Aborts))
	m.Counter("cuckood_txn_epoch_aborts_total", "Optimistic EXEC attempts aborted because a shard's migration epoch moved under a read-set entry.", float64(tx.EpochAborts))
	m.Counter("cuckood_txn_fallbacks_total", "EXEC transactions that exhausted optimistic retries and committed via the stripe-ordered pessimistic path.", float64(tx.Fallbacks))
	m.Counter("cuckood_txn_cas_conflicts_total", "CAS operations rejected because the current value differed.", float64(tx.CASConflicts))
	m.Counter("cuckood_txn_split_ops_total", "Commutative updates absorbed by per-shard split counters instead of the key's stripe.", float64(tx.SplitOps))
	m.Counter("cuckood_txn_split_reconciles_total", "Hot-key delta reconciliations folded into the table.", float64(tx.Reconciles))
	m.Counter("cuckood_txn_split_promotions_total", "Keys promoted to split-counter mode after stripe contention.", float64(tx.Promotions))
	m.Counter("cuckood_txn_split_demotions_total", "Hot keys demoted back to the direct path after going idle.", float64(tx.Demotions))
	m.Gauge("cuckood_txn_hot_keys", "Keys currently in split-counter mode.", float64(tx.HotKeys))

	// RetryHist[i] counts commits that needed exactly i optimistic retries;
	// the final bucket counts pessimistic fallbacks and maps to +Inf.
	n := len(tx.RetryHist)
	hb := make([]obs.HistBucket, 0, n-1)
	var cum, total uint64
	var sum float64
	for i, c := range tx.RetryHist {
		total += c
		sum += float64(uint64(i) * c)
		if i < n-1 {
			cum += c
			hb = append(hb, obs.HistBucket{UpperBound: float64(i), Count: cum})
		}
	}
	m.Histogram("cuckood_txn_retries",
		"Optimistic retries per committed EXEC (+Inf bucket = pessimistic fallback).",
		hb, total, sum)
}

// collectLatency exports the sampled request-service-time histogram. The
// internal buckets are powers of two in nanoseconds, so bucket i maps to
// le = 2^i / 1e9 seconds.
func (s *Server) collectLatency(m *obs.Metrics) {
	lat := s.cache.stats.lat.Snapshot()
	bk := lat.Buckets()
	hb := make([]obs.HistBucket, 0, latencyExportBuckets)
	var cum uint64
	for i := 0; i < latencyExportBuckets; i++ {
		cum += bk[i]
		hb = append(hb, obs.HistBucket{
			UpperBound: math.Ldexp(1, i) / 1e9,
			Count:      cum,
		})
	}
	m.Histogram("cuckood_request_duration_seconds",
		"Sampled request service time (excludes network I/O).",
		hb, lat.Count(), float64(lat.Sum())/1e9)
}

// collectTable exports the aggregated cuckoo-table internals: the signals
// the paper's evaluation inspects (BFS path lengths per Eq. 2, restart
// counts per Eq. 1) plus stripe-lock contention.
func (s *Server) collectTable(m *obs.Metrics) {
	tab, lock := s.cache.tableTotals()

	m.Counter("cuckoo_table_searches_total", "BFS cuckoo-path searches (slow-path inserts).", float64(tab.Searches))
	m.Counter("cuckoo_table_displacements_total", "Item moves along cuckoo paths.", float64(tab.Displacements))
	m.Counter("cuckoo_table_path_restarts_total", "Inserts restarted because a concurrent writer invalidated the path (Eq. 1).", float64(tab.PathRestarts))
	m.Counter("cuckoo_table_grows_total", "Automatic table expansions started (each drains incrementally).", float64(tab.Grows))
	m.Gauge("cuckoo_table_max_path_length", "Longest discovered cuckoo path, in displacements.", float64(tab.MaxPathLen))

	m.Counter("cuckood_grow_migrated_buckets_total", "Old-generation buckets drained by the incremental-resize migrator.", float64(tab.MigratedBuckets))
	m.Gauge("cuckood_grow_backlog_buckets", "Old-generation buckets still awaiting migration across all shards.", float64(tab.MigrationBacklog))
	m.Gauge("cuckood_grow_in_progress", "Shards with an incremental resize in flight.", float64(s.cache.growingShards()))

	// PathLenHist[i] counts paths of exactly i displacements; the last
	// bucket absorbs longer paths, which the +Inf bucket represents.
	hb := make([]obs.HistBucket, 0, generic.PathLenBuckets-1)
	var cum, total uint64
	var sum float64
	for i, n := range tab.PathLenHist {
		total += n
		sum += float64(uint64(i) * n)
		if i < generic.PathLenBuckets-1 {
			cum += n
			hb = append(hb, obs.HistBucket{UpperBound: float64(i), Count: cum})
		}
	}
	m.Histogram("cuckoo_table_path_length",
		"Discovered cuckoo-path length in displacements (Eq. 2 bounds this near 5).",
		hb, total, sum)

	m.Counter("cuckoo_lock_acquisitions_total", "Stripe-lock acquisitions across all shards.", float64(lock.Acquisitions))
	m.Counter("cuckoo_lock_contended_total", "Stripe-lock acquisitions that found the lock held.", float64(lock.Contended))
	m.Counter("cuckoo_lock_yields_total", "Scheduler yields while spinning on a stripe lock.", float64(lock.Yields))
}

// ExpvarSnapshot returns the STATS lines as a name→value map, suitable for
// obs.PublishExpvar so /debug/vars mirrors the wire-protocol STATS verb.
func (s *Server) ExpvarSnapshot() any {
	lines := s.cache.Snapshot(s.cache.stats)
	out := make(map[string]string, len(lines))
	for _, l := range lines {
		out[l.Name] = l.Value
	}
	return out
}
