package server

// Tests for the overload-control and crash-recovery machinery: accept-loop
// backoff, accept-time shedding, the in-flight limit, idle/write deadlines,
// and snapshot persistence. The deterministic chaos suite that drives all
// of these together under injected faults lives in chaos_test.go.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cuckoohash/internal/faultinject"
)

// scriptedListener feeds Serve a canned sequence of accept results, then
// parks until closed.
type scriptedListener struct {
	script []func() (net.Conn, error)
	calls  atomic.Int64
	done   chan struct{}
}

func (l *scriptedListener) Accept() (net.Conn, error) {
	i := int(l.calls.Add(1)) - 1
	if i < len(l.script) {
		return l.script[i]()
	}
	<-l.done
	return nil, net.ErrClosed
}

func (l *scriptedListener) Close() error {
	select {
	case <-l.done:
	default:
		close(l.done)
	}
	return nil
}

func (l *scriptedListener) Addr() net.Addr {
	return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
}

// TestServeRetriesTemporaryAcceptErrors is the regression test for the
// accept loop dying on the first transient error: temporary failures must
// be retried with backoff, and only permanent ones may end Serve.
func TestServeRetriesTemporaryAcceptErrors(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0", SweepInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	permanent := errors.New("listener torn out of the socket")
	temp := func() (net.Conn, error) { return nil, &faultinject.AcceptError{} }
	ln := &scriptedListener{
		script: []func() (net.Conn, error){temp, temp, temp,
			func() (net.Conn, error) { return nil, permanent }},
		done: make(chan struct{}),
	}
	defer ln.Close()
	s.ln = ln

	start := time.Now()
	if err := s.Serve(); !errors.Is(err, permanent) {
		t.Fatalf("Serve = %v, want the permanent error", err)
	}
	// Three retries at 5, 10, 20ms minimum.
	if d := time.Since(start); d < 35*time.Millisecond {
		t.Fatalf("Serve returned after %v; backoff did not happen", d)
	}
	if got := s.cache.stats.acceptRetries.Load(); got != 3 {
		t.Fatalf("acceptRetries = %d, want 3", got)
	}
}

func TestTemporaryAcceptClassification(t *testing.T) {
	if !isTemporaryAcceptErr(&faultinject.AcceptError{}) {
		t.Fatal("injected accept error not classified temporary")
	}
	if isTemporaryAcceptErr(net.ErrClosed) {
		t.Fatal("net.ErrClosed classified temporary")
	}
	if isTemporaryAcceptErr(errors.New("boom")) {
		t.Fatal("arbitrary error classified temporary")
	}
}

// TestMaxConnsShedsWithBusy: connections past the cap get "ERR busy" and a
// close — an explicit, retryable rejection.
func TestMaxConnsShedsWithBusy(t *testing.T) {
	s := startServer(t, Config{SweepInterval: -1, MaxConns: 1})

	c1 := dialRaw(t, s)
	// Complete one round trip so the handler (and connsActive) is up.
	if got := c1.roundTrip("SET a 1"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}

	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(nc).ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "ERR busy" {
		t.Fatalf("shed conn got %q, %v; want ERR busy", line, err)
	}
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("shed conn not closed after ERR busy")
	}
	if got := s.cache.stats.connsShed.Load(); got != 1 {
		t.Fatalf("connsShed = %d, want 1", got)
	}

	// Closing the first connection frees the slot for new clients.
	c1.conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		nc2, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		nc2.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := nc2.Write([]byte("GET a\n")); err == nil {
			line, err := bufio.NewReader(nc2).ReadString('\n')
			if err == nil && strings.TrimSpace(line) == "VALUE 1" {
				nc2.Close()
				return
			}
		}
		nc2.Close()
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after close")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestInflightLimitFastFails: with MaxInflight saturated by a stalled SET,
// other cache ops get ERR busy immediately — but STATS must still work so
// an overloaded server remains observable.
func TestInflightLimitFastFails(t *testing.T) {
	s := startServer(t, Config{SweepInterval: -1, MaxInflight: 1})
	block := make(chan struct{})
	var first atomic.Bool
	first.Store(true)
	s.cache.SetFailpoint(func(op, key string) error {
		if key == "slow" && first.CompareAndSwap(true, false) {
			<-block
		}
		return nil
	})

	c1 := dialRaw(t, s)
	c1.send("SET slow v\n")
	// Wait until the stalled SET actually holds the in-flight slot.
	waitUntil(t, time.Second, func() bool { return !first.Load() })

	c2 := dialRaw(t, s)
	if got := c2.roundTrip("SET other v"); got != "ERR busy" {
		t.Fatalf("saturated SET = %q, want ERR busy", got)
	}
	if got := c2.roundTrip("STATS"); !strings.HasPrefix(got, "STAT ") {
		t.Fatalf("STATS while saturated = %q, want STAT lines", got)
	}
	for c2.readLine() != "END" { // drain the rest of the STATS response
	}
	if got := s.cache.stats.busyRejected.Load(); got == 0 {
		t.Fatal("busyRejected = 0 after a rejection")
	}

	close(block)
	if got := c1.readLine(); got != "OK" {
		t.Fatalf("unblocked SET = %q, want OK", got)
	}
	if got := c2.roundTrip("SET other v"); got != "OK" {
		t.Fatalf("SET after release = %q, want OK", got)
	}
}

// TestIdleTimeoutClosesConnection: a connection idle at a batch boundary
// past IdleTimeout is closed and counted.
func TestIdleTimeoutClosesConnection(t *testing.T) {
	s := startServer(t, Config{SweepInterval: -1, IdleTimeout: 50 * time.Millisecond})
	c := dialRaw(t, s)
	if got := c.roundTrip("SET a 1"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.conn.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("idle conn read = %v, want server-side close", err)
	}
	if got := s.cache.stats.idleClosed.Load(); got != 1 {
		t.Fatalf("idleClosed = %d, want 1", got)
	}
	// An active connection keeps working well past the idle timeout.
	c2 := dialRaw(t, s)
	for i := 0; i < 5; i++ {
		time.Sleep(20 * time.Millisecond)
		if got := c2.roundTrip("GET a"); got != "VALUE 1" {
			t.Fatalf("active conn GET = %q at iteration %d", got, i)
		}
	}
}

// TestWriteTimeoutDropsStalledReader: a client that requests far more data
// than it reads must not pin the handler; the write deadline closes it.
func TestWriteTimeoutDropsStalledReader(t *testing.T) {
	s := startServer(t, Config{SweepInterval: -1, IOTimeout: 100 * time.Millisecond})
	val := strings.Repeat("x", 32<<10)
	if err := s.cache.Set("big", val, 0); err != nil {
		t.Fatal(err)
	}

	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Pipeline enough GETs that the responses overwhelm every buffer in
	// the path while we deliberately never read a byte.
	var req bytes.Buffer
	for i := 0; i < 2000; i++ {
		req.WriteString("GET big\n")
	}
	if _, err := nc.Write(req.Bytes()); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, func() bool {
		return s.cache.stats.ioTimeouts.Load() > 0
	})
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached before deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSnapshotRoundTrip: save → load preserves live entries and their
// expiry times, and drops entries that died in between.
func TestSnapshotRoundTrip(t *testing.T) {
	src, err := NewCache(4, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := src.Set(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Set("ttl", "v", time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := src.Set("dead", "v", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let "dead" expire

	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := NewCache(8, 1<<10) // different shard count: restore re-hashes
	if err != nil {
		t.Fatal(err)
	}
	n, err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 501 {
		t.Fatalf("loaded %d entries, want 501", n)
	}
	for i := 0; i < 500; i++ {
		if v, ok := dst.Get(fmt.Sprintf("k%d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d = %q, %v after restore", i, v, ok)
		}
	}
	if d, ok := dst.TTL("ttl"); !ok || d <= 0 || d > time.Hour {
		t.Fatalf("restored TTL = %v, %v", d, ok)
	}
	if _, ok := dst.Get("dead"); ok {
		t.Fatal("expired entry resurrected by restore")
	}
}

// TestSnapshotRejectsCorruption: every corruption class fails cleanly with
// ErrBadSnapshot and leaves the target cache untouched.
func TestSnapshotRejectsCorruption(t *testing.T) {
	src, err := NewCache(2, 1<<8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		src.Set(fmt.Sprintf("k%d", i), "v", 0)
	}
	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := map[string][]byte{
		"empty":     {},
		"badmagic":  append([]byte{0xde, 0xad}, good[2:]...),
		"truncated": good[:len(good)/2],
		"no-crc":    good[:len(good)-8],
	}
	// Flip one bit in the CRC trailer specifically.
	flipped := bytes.Clone(good)
	flipped[len(flipped)-1] ^= 0x01
	corrupt["flipped-crc"] = flipped
	// Flip a record byte so the CRC no longer matches the content.
	body := bytes.Clone(good)
	body[20] ^= 0xff
	corrupt["flipped-body"] = body
	// Wrong version word.
	ver := bytes.Clone(good)
	ver[8] = 0x63
	corrupt["badversion"] = ver

	for name, data := range corrupt {
		dst, err := NewCache(2, 1<<8)
		if err != nil {
			t.Fatal(err)
		}
		if _, lerr := dst.LoadSnapshot(bytes.NewReader(data)); !errors.Is(lerr, ErrBadSnapshot) {
			t.Errorf("%s: LoadSnapshot = %v, want ErrBadSnapshot", name, lerr)
		}
		if dst.Len() != 0 {
			t.Errorf("%s: corrupt load applied %d entries", name, dst.Len())
		}
	}
}

// TestDrainSavesAndRestartRestores is the crash-recovery acceptance test:
// a drained daemon persists its keyspace, and a new daemon on the same
// snapshot path serves it again.
func TestDrainSavesAndRestartRestores(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "cuckood.snap")

	s1 := startServer(t, Config{SweepInterval: -1, SnapshotPath: snap})
	c := dialRaw(t, s1)
	for i := 0; i < 100; i++ {
		if got := c.roundTrip(fmt.Sprintf("SET key%d val%d", i, i)); got != "OK" {
			t.Fatalf("SET key%d = %q", i, got)
		}
	}
	c.conn.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written on drain: %v", err)
	}
	if got := s1.cache.stats.snapSaves.Load(); got != 1 {
		t.Fatalf("snapSaves = %d, want 1", got)
	}

	s2 := startServer(t, Config{SweepInterval: -1, SnapshotPath: snap})
	c2 := dialRaw(t, s2)
	for i := 0; i < 100; i++ {
		want := fmt.Sprintf("VALUE val%d", i)
		if got := c2.roundTrip(fmt.Sprintf("GET key%d", i)); got != want {
			t.Fatalf("after restart GET key%d = %q, want %q", i, got, want)
		}
	}
	if got := s2.cache.stats.snapLoads.Load(); got != 1 {
		t.Fatalf("snapLoads = %d, want 1", got)
	}

	// A corrupt snapshot must not keep the daemon down: start cold instead.
	if err := os.WriteFile(snap, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := startServer(t, Config{SweepInterval: -1, SnapshotPath: snap})
	c3 := dialRaw(t, s3)
	if got := c3.roundTrip("GET key0"); got != "MISS" {
		t.Fatalf("cold start after corrupt snapshot GET = %q, want MISS", got)
	}
}

// TestStatsIncludesRobustnessCounters pins the STATS contract for the new
// counters so dashboards can rely on the names.
func TestStatsIncludesRobustnessCounters(t *testing.T) {
	s := startServer(t, Config{SweepInterval: -1})
	c := dialRaw(t, s)
	c.send("STATS\n")
	got := make(map[string]bool)
	for {
		line := c.readLine()
		if line == "END" {
			break
		}
		name, _, _ := strings.Cut(strings.TrimPrefix(line, "STAT "), " ")
		got[name] = true
	}
	for _, want := range []string{
		"accept_retries", "conns_shed", "busy_rejected", "idle_closed",
		"io_timeouts", "snapshot_saves", "snapshot_loads",
		"snapshot_last_save_ns", "snapshot_last_load_ns",
	} {
		if !got[want] {
			t.Errorf("STATS missing %q", want)
		}
	}
}
