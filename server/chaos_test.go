package server

// Deterministic chaos suite: the daemon serves real traffic through a
// seeded faultinject.Plan while hardened clients (retries + backoff +
// health-checked pool) run a write/read workload. The acceptance
// properties, per docs/ROBUSTNESS.md:
//
//   - durability: no acknowledged SET is ever lost, even when resets and
//     partial writes kill connections mid-pipeline;
//   - bounded degradation: with ~5% fault probability per I/O, the
//     client-visible failure rate stays far below the raw fault rate
//     because retries absorb transient faults;
//   - availability: accept-path faults degrade accept latency (backoff)
//     but never kill the accept loop;
//   - recovery: a faulted daemon drains, snapshots, and a restarted
//     daemon serves every acknowledged key.
//
// Faults are injected with fixed seeds, so a failure here reproduces
// exactly under `make chaos`.

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"cuckoohash/client"
	"cuckoohash/internal/faultinject"
)

// chaosScale shrinks the workload under -short (tier-1) and runs it full
// size under `make chaos`.
func chaosScale(short, full int, t *testing.T) int {
	if testing.Short() {
		return short
	}
	_ = t
	return full
}

// chaosPlan is the ~5% fault mix the acceptance criteria describe: every
// conn I/O rolls small probabilities of added latency, a partial write
// followed by a reset, or an immediate reset.
func chaosPlan(seed uint64) *faultinject.Plan {
	p := faultinject.New(seed)
	p.Latency = time.Millisecond
	p.LatencyProb = 0.05
	p.PartialProb = 0.02
	p.ResetProb = 0.03
	return p
}

func startChaosServer(t *testing.T, plan *faultinject.Plan, snapshot string) *Server {
	t.Helper()
	s, err := New(Config{
		Addr:          "127.0.0.1:0",
		Shards:        8,
		SlotsPerShard: 1 << 12,
		SweepInterval: -1,
		FaultPlan:     plan,
		SnapshotPath:  snapshot,
		IOTimeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()
	t.Cleanup(func() {
		s.Close()
		if err := <-serveErr; err != ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return s
}

func chaosPool(addr string, seed uint64) *client.Pool {
	return client.NewPoolWith(addr, client.Options{
		Size:           4,
		DialTimeout:    2 * time.Second,
		IOTimeout:      2 * time.Second,
		MaxRetries:     4,
		RetrySets:      true, // SET here is idempotent: unique key, fixed value
		BackoffBase:    time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		RetryBudgetMax: 1000, // durability test: bound comes from MaxRetries
		Seed:           seed,
	})
}

// TestChaosNoAcknowledgedWriteLost runs concurrent writers through the
// fault plan, then disarms it and audits: every SET the client saw "OK"
// for must be readable, and the end-to-end failure rate must stay well
// under the injected fault rate.
func TestChaosNoAcknowledgedWriteLost(t *testing.T) {
	plan := chaosPlan(0xC0FFEE)
	s := startChaosServer(t, plan, "")

	workers := 4
	perWorker := chaosScale(100, 400, t)
	type acked struct{ key, val string }
	ackedCh := make(chan acked, workers*perWorker)
	var failed, total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := chaosPool(s.Addr().String(), uint64(w+1))
			defer p.Close()
			var myFailed int64
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				val := fmt.Sprintf("v%d-%d", w, i)
				if err := p.Set(key, val, 0); err != nil {
					myFailed++
					continue
				}
				ackedCh <- acked{key, val}
			}
			mu.Lock()
			failed += myFailed
			total += int64(perWorker)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	close(ackedCh)

	if plan.Fired() == 0 {
		t.Fatal("fault plan never fired; the chaos test tested nothing")
	}
	t.Logf("faults: rolls=%d fired=%d; ops=%d failed=%d",
		plan.Rolls(), plan.Fired(), total, failed)

	// Bounded degradation: raw fault probability is ~5% per I/O; four
	// retries push the per-op failure probability orders of magnitude
	// lower. 2% leaves slack for fault clustering while still proving
	// retries absorb faults.
	if maxFailed := total / 50; failed > maxFailed {
		t.Errorf("failed ops = %d / %d, want <= %d: retries are not absorbing faults",
			failed, total, maxFailed)
	}

	// Durability audit on a clean transport: disarm faults first.
	plan.Disarm()
	p := client.NewPool(s.Addr().String(), 2)
	defer p.Close()
	audited := 0
	for a := range ackedCh {
		v, ok, err := p.Get1(a.key)
		if err != nil {
			t.Fatalf("audit GET %s: %v", a.key, err)
		}
		if !ok || v != a.val {
			t.Fatalf("acknowledged SET lost: %s = %q, %v (want %q)", a.key, v, ok, a.val)
		}
		audited++
	}
	if audited == 0 {
		t.Fatal("no acknowledged writes to audit")
	}
	t.Logf("audited %d acknowledged writes, none lost", audited)
}

// TestChaosGrowUnderLoad drives a zipf(s=1.2) workload plus a stream of
// unique inserts through the ~5% fault plan against deliberately small
// shards, so every shard's table grows at least twice *while* serving
// traffic. The incremental-resize acceptance properties
// (docs/ROBUSTNESS.md):
//
//   - liveness: a grow never stalls the request loop — every op during a
//     grow either succeeds or fails like any other faulted op;
//   - durability: no acknowledged SET is lost across the grows (writes
//     land in the live generation, reads consult old generations);
//   - bounded latency: a grow shows up as per-op migration batches, not a
//     stop-the-world rebuild, so the client-visible p99 stays small;
//   - completion: once load stops, the background sweeper drains every
//     old generation to a zero backlog.
func TestChaosGrowUnderLoad(t *testing.T) {
	plan := chaosPlan(0x6120F)
	s, err := New(Config{
		Addr:   "127.0.0.1:0",
		Shards: 4,
		// Small cap: each shard starts at 512/8 = 64 slots and must grow
		// 64 -> 128 -> 256 (-> 512 at full scale) to hold the workload,
		// which stays far enough under the 2048-slot maximum that the
		// FIFO evictor never fires and durability is entirely on the
		// resize machinery.
		SlotsPerShard: 512,
		SweepInterval: -1,
		FaultPlan:     plan,
		IOTimeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()
	t.Cleanup(func() {
		s.Close()
		if err := <-serveErr; err != ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})

	const hotRanks = 256 // zipf keyspace; hot values are key-deterministic
	workers := 4
	perWorker := chaosScale(140, 280, t)
	type acked struct{ key, val string }
	ackedCh := make(chan acked, workers*perWorker*2)
	latCh := make(chan []time.Duration, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := chaosPool(s.Addr().String(), uint64(w+21))
			defer p.Close()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			zipf := rand.NewZipf(rng, 1.2, 1, hotRanks-1)
			lats := make([]time.Duration, 0, perWorker*2)
			for i := 0; i < perWorker; i++ {
				// Unique filler insert: this is what fills the shards past
				// their current capacity and forces the grows.
				key := fmt.Sprintf("g%d-%d", w, i)
				val := fmt.Sprintf("gv%d-%d", w, i)
				t0 := time.Now()
				err := p.Set(key, val, 0)
				lats = append(lats, time.Since(t0))
				if err == nil {
					ackedCh <- acked{key, val}
				}
				// Hot zipf op: SETs write the rank-deterministic value, so
				// concurrent writers to one hot key always agree and the
				// audit below has a single correct answer per key.
				rank := zipf.Uint64()
				hk := fmt.Sprintf("hot%d", rank)
				t0 = time.Now()
				if i%2 == 0 {
					hv := fmt.Sprintf("hv%d", rank)
					err := p.Set(hk, hv, 0)
					lats = append(lats, time.Since(t0))
					if err == nil {
						ackedCh <- acked{hk, hv}
					}
				} else {
					_, _, _ = p.Get1(hk)
					lats = append(lats, time.Since(t0))
				}
			}
			latCh <- lats
		}(w)
	}
	wg.Wait()
	close(ackedCh)
	close(latCh)

	if plan.Fired() == 0 {
		t.Fatal("fault plan never fired; the chaos test tested nothing")
	}

	// Every shard must have resized at least twice under load — otherwise
	// the test exercised a static table and proved nothing about grows.
	tab, _ := s.cache.tableTotals()
	for i, sh := range s.cache.shards {
		if g := sh.table.Stats().Grows; g < 2 {
			t.Errorf("shard %d grew %d times, want >= 2 (workload did not exercise incremental resize)", i, g)
		}
	}
	t.Logf("faults fired=%d; grows=%d migrated_buckets=%d evictions=%d",
		plan.Fired(), tab.Grows, tab.MigratedBuckets, s.cache.stats.evictions.Total())

	// Completion: with load stopped, the background sweeper (plus the last
	// per-op batches) must drain every old generation.
	waitUntil(t, 10*time.Second, func() bool {
		return s.cache.growingShards() == 0
	})
	if tab, _ := s.cache.tableTotals(); tab.MigrationBacklog != 0 {
		t.Errorf("migration backlog = %d buckets after drain, want 0", tab.MigrationBacklog)
	}
	if tab.MigratedBuckets == 0 {
		t.Error("MigratedBuckets = 0: grows happened but nothing was migrated incrementally")
	}

	// Bounded latency: the old path rebuilt a whole shard inside one SET;
	// the incremental path bounds each op to a constant migration batch.
	// 500ms is orders of magnitude above a healthy op (even with injected
	// faults and retry backoff) and orders below nothing-else-runs rebuild
	// stalls compounding under -race.
	var all []time.Duration
	for lats := range latCh {
		all = append(all, lats...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 := all[len(all)*99/100]
	t.Logf("ops=%d p50=%v p99=%v max=%v", len(all), all[len(all)/2], p99, all[len(all)-1])
	if p99 > 500*time.Millisecond {
		t.Errorf("p99 op latency = %v under grow, want <= 500ms", p99)
	}

	// Durability audit on a clean transport: every acknowledged SET —
	// filler or hot — must be present with its (key-deterministic) value.
	plan.Disarm()
	p := client.NewPool(s.Addr().String(), 2)
	defer p.Close()
	want := make(map[string]string)
	for a := range ackedCh {
		want[a.key] = a.val
	}
	if len(want) == 0 {
		t.Fatal("no acknowledged writes to audit")
	}
	for key, val := range want {
		v, ok, err := p.Get1(key)
		if err != nil {
			t.Fatalf("audit GET %s: %v", key, err)
		}
		if !ok || v != val {
			t.Fatalf("acknowledged SET lost across grow: %s = %q, %v (want %q)", key, v, ok, val)
		}
	}
	t.Logf("audited %d acknowledged keys across %d grows, none lost", len(want), tab.Grows)
}

// TestChaosAcceptFaultsDoNotKillServe: with a high accept-fault rate the
// accept loop must keep retrying (counted, backed off) and clients must
// still get connected and served.
func TestChaosAcceptFaultsDoNotKillServe(t *testing.T) {
	plan := faultinject.New(0xACCE97)
	plan.AcceptProb = 0.3
	s := startChaosServer(t, plan, "")

	ops := chaosScale(50, 200, t)
	p := chaosPool(s.Addr().String(), 42)
	defer p.Close()
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := p.Set(key, "v", 0); err != nil {
			t.Fatalf("SET %s under accept faults: %v", key, err)
		}
	}
	waitUntil(t, 5*time.Second, func() bool {
		return s.cache.stats.acceptRetries.Load() > 0
	})
	t.Logf("accept retries: %d", s.cache.stats.acceptRetries.Load())
}

// TestChaosRestartRestoresAcknowledgedWrites: writes land through faults,
// the daemon drains and snapshots, and a fresh daemon on the same
// snapshot path serves every acknowledged key — the kill→restart
// acceptance path, with chaos on the way in.
func TestChaosRestartRestoresAcknowledgedWrites(t *testing.T) {
	snap := t.TempDir() + "/chaos.snap"
	plan := chaosPlan(0xDEAD)
	s1 := startChaosServer(t, plan, snap)

	ops := chaosScale(100, 400, t)
	p := chaosPool(s1.Addr().String(), 7)
	acked := make(map[string]string, ops)
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("k%d", i)
		val := fmt.Sprintf("v%d", i)
		if err := p.Set(key, val, 0); err != nil {
			continue // unacknowledged: no durability obligation
		}
		acked[key] = val
	}
	p.Close()
	if len(acked) == 0 {
		t.Fatal("no writes acknowledged")
	}

	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := startChaosServer(t, nil, snap)
	p2 := client.NewPool(s2.Addr().String(), 2)
	defer p2.Close()
	for key, val := range acked {
		v, ok, err := p2.Get1(key)
		if err != nil {
			t.Fatalf("after restart GET %s: %v", key, err)
		}
		if !ok || v != val {
			t.Fatalf("acknowledged SET lost across restart: %s = %q, %v (want %q)",
				key, v, ok, val)
		}
	}
	t.Logf("restart preserved all %d acknowledged writes", len(acked))
}

// TestChaosCounterExactness hammers a small hot keyset with INCRs through
// the fault plan. INCR is not idempotent, so the client never retries it
// (docs/TRANSACTIONS.md); each attempt therefore applies at most once, and
// each acknowledged attempt applied exactly once. Per key the stored value
// must satisfy
//
//	acked_k <= value_k <= attempts_k
//
// — below the lower bound an acknowledged INCR was lost, above the upper
// bound one was double-applied. The bound is then re-checked after a
// drain + snapshot + restart: the shutdown path must fold every pending
// split-counter delta into the table before the snapshot is cut.
func TestChaosCounterExactness(t *testing.T) {
	const hotKeys = 4
	snap := t.TempDir() + "/counters.snap"
	plan := chaosPlan(0xC047E8)
	s1 := startChaosServer(t, plan, snap)

	workers := 4
	perWorker := chaosScale(150, 600, t)
	acked := make([]int64, hotKeys)
	attempts := make([]int64, hotKeys)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := chaosPool(s1.Addr().String(), uint64(w+11))
			defer p.Close()
			myAcked := make([]int64, hotKeys)
			myAttempts := make([]int64, hotKeys)
			for i := 0; i < perWorker; i++ {
				k := i % hotKeys
				myAttempts[k]++
				if err := p.Incr(fmt.Sprintf("ctr%d", k), 1); err == nil {
					myAcked[k]++
				}
			}
			mu.Lock()
			for k := 0; k < hotKeys; k++ {
				acked[k] += myAcked[k]
				attempts[k] += myAttempts[k]
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	if plan.Fired() == 0 {
		t.Fatal("fault plan never fired; the chaos test tested nothing")
	}
	var totalAcked, totalAttempts int64
	for k := 0; k < hotKeys; k++ {
		totalAcked += acked[k]
		totalAttempts += attempts[k]
	}
	if totalAcked == 0 {
		t.Fatal("no INCR acknowledged")
	}
	t.Logf("faults fired=%d; INCRs acked=%d / attempted=%d",
		plan.Fired(), totalAcked, totalAttempts)

	// Exactness audit on a clean transport, before and after restart.
	plan.Disarm()
	audit := func(s *Server, when string) []int64 {
		t.Helper()
		p := client.NewPool(s.Addr().String(), 2)
		defer p.Close()
		vals := make([]int64, hotKeys)
		for k := 0; k < hotKeys; k++ {
			key := fmt.Sprintf("ctr%d", k)
			v, ok, err := p.Get1(key)
			if err != nil {
				t.Fatalf("%s audit GET %s: %v", when, key, err)
			}
			if ok {
				n, perr := strconv.ParseInt(v, 10, 64)
				if perr != nil {
					t.Fatalf("%s audit: %s holds non-integer %q", when, key, v)
				}
				vals[k] = n
			}
			if vals[k] < acked[k] || vals[k] > attempts[k] {
				t.Fatalf("%s audit: %s = %d, want %d <= value <= %d (acked INCR lost or double-applied)",
					when, key, vals[k], acked[k], attempts[k])
			}
		}
		return vals
	}
	before := audit(s1, "pre-restart")

	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := startChaosServer(t, nil, snap)
	after := audit(s2, "post-restart")
	for k := 0; k < hotKeys; k++ {
		if after[k] != before[k] {
			t.Fatalf("ctr%d changed across snapshot restart: %d -> %d",
				k, before[k], after[k])
		}
	}
	t.Logf("counter exactness held across %d keys and a snapshot restart", hotKeys)
}
