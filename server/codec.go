package server

import (
	"bufio"
	"bytes"
	"errors"
	"strconv"
	"time"
)

// The wire protocol (docs/PROTOCOL.md) is memcached-style text lines. One
// request per line, one response line per request (STATS responds with
// multiple lines terminated by END), so a client can write any number of
// requests before reading — responses come back in order.

// maxKeyLen matches memcached's key limit.
const maxKeyLen = 250

type opCode uint8

const (
	opGet opCode = iota
	opSet
	opSetEx
	opDel
	opTTL
	opStats
	opQuit
	// opBad marks a line that failed to parse; it is never dispatched, only
	// reported in logs.
	opBad opCode = 0xff
)

// String names the op for structured logs.
func (o opCode) String() string {
	switch o {
	case opGet:
		return "GET"
	case opSet:
		return "SET"
	case opSetEx:
		return "SETEX"
	case opDel:
		return "DEL"
	case opTTL:
		return "TTL"
	case opStats:
		return "STATS"
	case opQuit:
		return "QUIT"
	}
	return "INVALID"
}

// request is one parsed protocol line. key and val alias the connection's
// read buffer and are only valid until the next read; handlers that store
// them must copy (conn.go does, via string conversions).
type request struct {
	op  opCode
	key []byte
	ttl time.Duration
	val []byte
}

var (
	errEmpty      = errors.New("empty command")
	errUnknownCmd = errors.New("unknown command")
	errBadArgs    = errors.New("wrong number of arguments")
	errKeyTooLong = errors.New("key exceeds 250 bytes")
	errBadTTL     = errors.New("ttl must be a positive integer (milliseconds)")
)

// nextToken splits the first space-separated token off line.
func nextToken(line []byte) (tok, rest []byte) {
	if i := bytes.IndexByte(line, ' '); i >= 0 {
		return line[:i], line[i+1:]
	}
	return line, nil
}

// parseRequest parses one protocol line (already stripped of \r\n).
func parseRequest(line []byte) (request, error) {
	cmd, rest := nextToken(line)
	if len(cmd) == 0 {
		return request{}, errEmpty
	}
	switch {
	case asciiEqualFold(cmd, "GET"):
		return parseKeyOnly(opGet, rest)
	case asciiEqualFold(cmd, "DEL"):
		return parseKeyOnly(opDel, rest)
	case asciiEqualFold(cmd, "TTL"):
		return parseKeyOnly(opTTL, rest)
	case asciiEqualFold(cmd, "SET"):
		key, val := nextToken(rest)
		if len(key) == 0 || val == nil {
			return request{}, errBadArgs
		}
		if len(key) > maxKeyLen {
			return request{}, errKeyTooLong
		}
		return request{op: opSet, key: key, val: val}, nil
	case asciiEqualFold(cmd, "SETEX"):
		key, rest2 := nextToken(rest)
		ttlTok, val := nextToken(rest2)
		if len(key) == 0 || len(ttlTok) == 0 || val == nil {
			return request{}, errBadArgs
		}
		if len(key) > maxKeyLen {
			return request{}, errKeyTooLong
		}
		ms, err := strconv.ParseUint(string(ttlTok), 10, 32)
		if err != nil || ms == 0 {
			return request{}, errBadTTL
		}
		return request{op: opSetEx, key: key, ttl: time.Duration(ms) * time.Millisecond, val: val}, nil
	case asciiEqualFold(cmd, "STATS"):
		if len(rest) != 0 {
			return request{}, errBadArgs
		}
		return request{op: opStats}, nil
	case asciiEqualFold(cmd, "QUIT"):
		return request{op: opQuit}, nil
	}
	return request{}, errUnknownCmd
}

func parseKeyOnly(op opCode, rest []byte) (request, error) {
	key, extra := nextToken(rest)
	if len(key) == 0 || extra != nil {
		return request{}, errBadArgs
	}
	if len(key) > maxKeyLen {
		return request{}, errKeyTooLong
	}
	return request{op: op, key: key}, nil
}

// asciiEqualFold reports whether b equals the upper-case ASCII literal s
// case-insensitively, without allocating.
func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// Response writers. Each writes into the connection's buffered writer;
// nothing reaches the socket until the batch flush.

func writeOK(w *bufio.Writer) {
	w.WriteString("OK\n")
}

func writeMiss(w *bufio.Writer) {
	w.WriteString("MISS\n")
}

func writeValue(w *bufio.Writer, val string) {
	w.WriteString("VALUE ")
	w.WriteString(val)
	w.WriteByte('\n')
}

func writeTTL(w *bufio.Writer, d time.Duration, persistent bool) {
	w.WriteString("TTL ")
	if persistent {
		w.WriteString("-1")
	} else {
		ms := d.Milliseconds()
		if ms < 1 {
			ms = 1 // live but sub-millisecond: never report 0 for a hit
		}
		w.WriteString(strconv.FormatInt(ms, 10))
	}
	w.WriteByte('\n')
}

func writeErr(w *bufio.Writer, err error) {
	w.WriteString("ERR ")
	w.WriteString(err.Error())
	w.WriteByte('\n')
}

func writeStats(w *bufio.Writer, lines []Stat) {
	for _, s := range lines {
		w.WriteString("STAT ")
		w.WriteString(s.Name)
		w.WriteByte(' ')
		w.WriteString(s.Value)
		w.WriteByte('\n')
	}
	w.WriteString("END\n")
}
