package server

import (
	"bufio"
	"bytes"
	"errors"
	"strconv"
	"time"

	"cuckoohash/internal/obs"
	"cuckoohash/internal/txn"
)

// The wire protocol (docs/PROTOCOL.md) is memcached-style text lines. One
// request per line, one response line per request (STATS responds with
// multiple lines terminated by END), so a client can write any number of
// requests before reading — responses come back in order.

// maxKeyLen matches memcached's key limit.
const maxKeyLen = 250

type opCode uint8

const (
	opGet opCode = iota
	opSet
	opSetEx
	opDel
	opTTL
	opStats
	opQuit
	// Cluster verbs (docs/CLUSTER.md): node info, key migration to a
	// two-choice peer, and the inbound side of that bulk transfer.
	opCluster
	opMigrate
	opHandoff
	// Transaction verbs (docs/TRANSACTIONS.md): atomic read-modify-write
	// singles plus the MULTI…EXEC/DISCARD queueing envelope.
	opIncr
	opDecr
	opAdd
	opMaxUpdate
	opCAS
	opMulti
	opExec
	opDiscard
	// Observability verbs (docs/OBSERVABILITY.md): the server-measured
	// hot-key top-K.
	opHotKeys
	// Replication and lease verbs (docs/REPLICATION.md): versioned
	// reads/writes, the miss-lease anti-herd protocol, and the inbound
	// side of the asynchronous two-choice mirror stream.
	opGetV
	opSetV
	opLease
	opSetLease
	opReplSet
	opReplDel
	// opBad marks a line that failed to parse; it is never dispatched, only
	// reported in logs.
	opBad opCode = 0xff
)

// String names the op for structured logs.
func (o opCode) String() string {
	switch o {
	case opGet:
		return "GET"
	case opSet:
		return "SET"
	case opSetEx:
		return "SETEX"
	case opDel:
		return "DEL"
	case opTTL:
		return "TTL"
	case opStats:
		return "STATS"
	case opQuit:
		return "QUIT"
	case opCluster:
		return "CLUSTER"
	case opMigrate:
		return "MIGRATE"
	case opHandoff:
		return "HANDOFF"
	case opIncr:
		return "INCR"
	case opDecr:
		return "DECR"
	case opAdd:
		return "ADD"
	case opMaxUpdate:
		return "MAXUPDATE"
	case opCAS:
		return "CAS"
	case opMulti:
		return "MULTI"
	case opExec:
		return "EXEC"
	case opDiscard:
		return "DISCARD"
	case opHotKeys:
		return "HOTKEYS"
	case opGetV:
		return "GETV"
	case opSetV:
		return "SETV"
	case opLease:
		return "LEASE"
	case opSetLease:
		return "SETL"
	case opReplSet:
		return "REPLSET"
	case opReplDel:
		return "REPLDEL"
	}
	return "INVALID"
}

// request is one parsed protocol line. key and val alias the connection's
// read buffer and are only valid until the next read; handlers that store
// them must copy (conn.go does, via string conversions).
type request struct {
	op  opCode
	key []byte
	ttl time.Duration
	val []byte
	// payload is the HANDOFF body length; the bytes follow the request
	// line on the wire and are consumed by the handler.
	payload uint64
	// mig carries the MIGRATE arguments. Unlike key/val it is fully
	// copied out of the read buffer — migrations are rare admin
	// operations, so the allocations are off the hot path.
	mig *migrateArgs
	// delta is the INCR/DECR/ADD operand or the MAXUPDATE target.
	delta int64
	// old is the CAS expected value; like key/val it aliases the read
	// buffer. val holds the CAS replacement.
	old []byte
	// trace is the wire trace ID from an optional "TRACE <id>" prefix
	// (docs/OBSERVABILITY.md); nil when the request is untraced. Like
	// key/val it aliases the read buffer.
	trace []byte
	// ver carries REPLSET/REPLDEL's version word and SETL's lease token
	// (both unsigned 64-bit words); delta doubles as REPLSET's absolute
	// expireAt (unix nanoseconds, 0 = no expiry).
	ver uint64
}

// migrateArgs are the parsed operands of a MIGRATE line:
//
//	MIGRATE <mode> <dest> <self> <seed> <max> <ring-csv>
//
// mode "home" moves keys that do not belong on this node (self is not
// one of their two candidates under the ring) — the repair pass after a
// membership change and the whole of a drain; mode "shed" moves
// correctly-placed keys to their other candidate — the load-balancing
// kick-out. dest is where keys go, self is this node's ring name, seed
// fixes the placement hash, max bounds moved keys (0 = unlimited), and
// ring-csv is the comma-separated membership the candidates are computed
// against.
type migrateArgs struct {
	mode string
	dest string
	self string
	seed uint64
	max  int
	ring string
}

var (
	errEmpty      = errors.New("empty command")
	errUnknownCmd = errors.New("unknown command")
	errBadArgs    = errors.New("wrong number of arguments")
	errKeyTooLong = errors.New("key exceeds 250 bytes")
	errBadTTL     = errors.New("ttl must be a positive integer (milliseconds)")

	errBadPayload = errors.New("handoff payload must be 1.." + handoffMaxStr + " bytes")
	errBadMigrate = errors.New("migrate wants: MIGRATE <home|shed> <dest> <self> <seed> <max> <ring-csv>")

	errBadDelta = errors.New("delta must be a signed 64-bit integer")

	errBadTrace   = errors.New("trace wants: TRACE <id (1..64 bytes)> <command...>")
	errBadHotKeys = errors.New("hotkeys wants: HOTKEYS [count (1.." + hotKeysMaxStr + ")]")

	errBadVer   = errors.New("version must be an unsigned 64-bit integer")
	errBadToken = errors.New("lease token must be 1..16 hex digits")
)

// nextToken splits the first space-separated token off line.
func nextToken(line []byte) (tok, rest []byte) {
	if i := bytes.IndexByte(line, ' '); i >= 0 {
		return line[:i], line[i+1:]
	}
	return line, nil
}

// parseRequest parses one protocol line (already stripped of \r\n).
// GET and SET parse without copying — key and val alias the line;
// numeric-operand verbs copy their token for strconv.
//
//cuckoo:hotpath the wire decoder; GET/SET lines parse allocation-free
func parseRequest(line []byte) (request, error) {
	return parseRequest1(line, true)
}

// parseRequest1 is parseRequest with the TRACE prefix gated: the prefix
// is legal exactly once, at the start of the line.
func parseRequest1(line []byte, allowTrace bool) (request, error) {
	cmd, rest := nextToken(line)
	if len(cmd) == 0 {
		return request{}, errEmpty
	}
	if asciiEqualFold(cmd, "TRACE") {
		if !allowTrace {
			return request{}, errBadTrace
		}
		id, rest2 := nextToken(rest)
		if len(id) == 0 || len(id) > maxTraceIDLen || rest2 == nil {
			return request{}, errBadTrace
		}
		req, err := parseRequest1(rest2, false)
		if err != nil {
			return request{}, err
		}
		req.trace = id
		return req, nil
	}
	switch {
	case asciiEqualFold(cmd, "GET"):
		return parseKeyOnly(opGet, rest)
	case asciiEqualFold(cmd, "DEL"):
		return parseKeyOnly(opDel, rest)
	case asciiEqualFold(cmd, "TTL"):
		return parseKeyOnly(opTTL, rest)
	case asciiEqualFold(cmd, "SET"):
		key, val := nextToken(rest)
		if len(key) == 0 || val == nil {
			return request{}, errBadArgs
		}
		if len(key) > maxKeyLen {
			return request{}, errKeyTooLong
		}
		return request{op: opSet, key: key, val: val}, nil
	case asciiEqualFold(cmd, "SETEX"):
		key, rest2 := nextToken(rest)
		ttlTok, val := nextToken(rest2)
		if len(key) == 0 || len(ttlTok) == 0 || val == nil {
			return request{}, errBadArgs
		}
		if len(key) > maxKeyLen {
			return request{}, errKeyTooLong
		}
		//lint:allow cuckoovet:allocfree the TTL token is copied for strconv; SETEX pays one bounded copy, GET/SET none
		ms, err := strconv.ParseUint(string(ttlTok), 10, 32)
		if err != nil || ms == 0 {
			return request{}, errBadTTL
		}
		return request{op: opSetEx, key: key, ttl: time.Duration(ms) * time.Millisecond, val: val}, nil
	case asciiEqualFold(cmd, "STATS"):
		if len(rest) != 0 {
			return request{}, errBadArgs
		}
		return request{op: opStats}, nil
	case asciiEqualFold(cmd, "QUIT"):
		return request{op: opQuit}, nil
	case asciiEqualFold(cmd, "CLUSTER"):
		if len(rest) != 0 {
			return request{}, errBadArgs
		}
		return request{op: opCluster}, nil
	case asciiEqualFold(cmd, "HANDOFF"):
		return parseHandoff(rest)
	case asciiEqualFold(cmd, "MIGRATE"):
		return parseMigrate(rest)
	case asciiEqualFold(cmd, "INCR"):
		return parseCounter(opIncr, rest, false)
	case asciiEqualFold(cmd, "DECR"):
		return parseCounter(opDecr, rest, false)
	case asciiEqualFold(cmd, "ADD"):
		return parseCounter(opAdd, rest, true)
	case asciiEqualFold(cmd, "MAXUPDATE"):
		return parseCounter(opMaxUpdate, rest, true)
	case asciiEqualFold(cmd, "CAS"):
		return parseCAS(rest)
	case asciiEqualFold(cmd, "MULTI"):
		if len(rest) != 0 {
			return request{}, errBadArgs
		}
		return request{op: opMulti}, nil
	case asciiEqualFold(cmd, "EXEC"):
		if len(rest) != 0 {
			return request{}, errBadArgs
		}
		return request{op: opExec}, nil
	case asciiEqualFold(cmd, "DISCARD"):
		if len(rest) != 0 {
			return request{}, errBadArgs
		}
		return request{op: opDiscard}, nil
	case asciiEqualFold(cmd, "HOTKEYS"):
		return parseHotKeys(rest)
	case asciiEqualFold(cmd, "GETV"):
		return parseKeyOnly(opGetV, rest)
	case asciiEqualFold(cmd, "SETV"):
		return parseSetV(rest)
	case asciiEqualFold(cmd, "LEASE"):
		return parseKeyOnly(opLease, rest)
	case asciiEqualFold(cmd, "SETL"):
		return parseSetLease(rest)
	case asciiEqualFold(cmd, "REPLSET"):
		return parseReplSet(rest)
	case asciiEqualFold(cmd, "REPLDEL"):
		return parseReplDel(rest)
	}
	return request{}, errUnknownCmd
}

// parseSetV parses SETV <key> <ttl_ms> <val>: SET returning the write's
// version word. Unlike SETEX, ttl 0 is legal and means no expiry, so
// one verb covers both SET and SETEX shapes for version-aware clients.
func parseSetV(rest []byte) (request, error) {
	key, rest2 := nextToken(rest)
	ttlTok, val := nextToken(rest2)
	if len(key) == 0 || len(ttlTok) == 0 || val == nil {
		return request{}, errBadArgs
	}
	if len(key) > maxKeyLen {
		return request{}, errKeyTooLong
	}
	//lint:allow cuckoovet:allocfree the TTL token is copied for strconv; SETV pays one bounded copy like SETEX
	ms, err := strconv.ParseUint(string(ttlTok), 10, 32)
	if err != nil {
		return request{}, errBadTTL
	}
	return request{op: opSetV, key: key, ttl: time.Duration(ms) * time.Millisecond, val: val}, nil
}

// parseSetLease parses SETL <key> <token> <ttl_ms> <val>: the lease
// winner's fill. token is the hex word a LEASE grant handed out; ttl 0
// means no expiry.
func parseSetLease(rest []byte) (request, error) {
	key, rest2 := nextToken(rest)
	tokTok, rest3 := nextToken(rest2)
	ttlTok, val := nextToken(rest3)
	if len(key) == 0 || len(tokTok) == 0 || len(ttlTok) == 0 || val == nil {
		return request{}, errBadArgs
	}
	if len(key) > maxKeyLen {
		return request{}, errKeyTooLong
	}
	if len(tokTok) > 16 {
		return request{}, errBadToken
	}
	//lint:allow cuckoovet:allocfree lease fills happen once per miss storm; the token copy is bounded to 16 bytes
	token, err := strconv.ParseUint(string(tokTok), 16, 64)
	if err != nil || token == 0 {
		return request{}, errBadToken
	}
	//lint:allow cuckoovet:allocfree the TTL token is copied for strconv, same as SETEX
	ms, err := strconv.ParseUint(string(ttlTok), 10, 32)
	if err != nil {
		return request{}, errBadTTL
	}
	return request{op: opSetLease, key: key, ver: token, ttl: time.Duration(ms) * time.Millisecond, val: val}, nil
}

// parseReplSet parses REPLSET <key> <ver> <expireAtNs> <val>, the
// inbound mirror write. ver is the origin's version word; expireAt is
// absolute unix nanoseconds (0 = no expiry) so TTLs survive the hop
// without clock math.
func parseReplSet(rest []byte) (request, error) {
	key, rest2 := nextToken(rest)
	verTok, rest3 := nextToken(rest2)
	expTok, val := nextToken(rest3)
	if len(key) == 0 || len(verTok) == 0 || len(expTok) == 0 || val == nil {
		return request{}, errBadArgs
	}
	if len(key) > maxKeyLen {
		return request{}, errKeyTooLong
	}
	//lint:allow cuckoovet:allocfree mirror traffic copies its two numeric tokens for strconv; bounded to 20 bytes each
	ver, err := strconv.ParseUint(string(verTok), 10, 64)
	if err != nil || ver == 0 {
		return request{}, errBadVer
	}
	//lint:allow cuckoovet:allocfree see above
	exp, err := strconv.ParseInt(string(expTok), 10, 64)
	if err != nil || exp < 0 {
		return request{}, errBadDelta
	}
	return request{op: opReplSet, key: key, ver: ver, delta: exp, val: val}, nil
}

// parseReplDel parses REPLDEL <key> <ver>, the mirrored tombstone.
func parseReplDel(rest []byte) (request, error) {
	key, rest2 := nextToken(rest)
	verTok, extra := nextToken(rest2)
	if len(key) == 0 || len(verTok) == 0 || extra != nil {
		return request{}, errBadArgs
	}
	if len(key) > maxKeyLen {
		return request{}, errKeyTooLong
	}
	//lint:allow cuckoovet:allocfree mirror traffic copies its version token for strconv; bounded to 20 bytes
	ver, err := strconv.ParseUint(string(verTok), 10, 64)
	if err != nil || ver == 0 {
		return request{}, errBadVer
	}
	return request{op: opReplDel, key: key, ver: ver}, nil
}

// maxTraceIDLen mirrors obs.MaxTraceIDLen without importing obs into
// the codec; a compile-time assertion in conn.go keeps them equal.
const maxTraceIDLen = 64

// hotKeysMax bounds the HOTKEYS count operand: the server tracks only a
// few dozen keys per sketch, so asking for more is a client bug.
const (
	hotKeysMax    = 128
	hotKeysMaxStr = "128"
)

// parseHotKeys parses HOTKEYS [count]; count defaults to 10 and rides
// in req.delta.
func parseHotKeys(rest []byte) (request, error) {
	n := int64(10)
	tok, extra := nextToken(rest)
	if len(tok) != 0 {
		if extra != nil {
			return request{}, errBadHotKeys
		}
		//lint:allow cuckoovet:allocfree HOTKEYS is an operator verb; its count token is copied for strconv
		v, err := strconv.ParseInt(string(tok), 10, 64)
		if err != nil || v < 1 || v > hotKeysMax {
			return request{}, errBadHotKeys
		}
		n = v
	}
	return request{op: opHotKeys, delta: n}, nil
}

// parseCounter parses the arithmetic verbs:
//
//	INCR <key> [delta]   DECR <key> [delta]   (delta defaults to 1)
//	ADD <key> <delta>    MAXUPDATE <key> <n>  (operand required)
//
// delta is a signed 64-bit integer; DECR negates it at parse time so the
// dispatch layer sees a single add-delta operation.
func parseCounter(op opCode, rest []byte, operandRequired bool) (request, error) {
	key, rest2 := nextToken(rest)
	if len(key) == 0 {
		return request{}, errBadArgs
	}
	if len(key) > maxKeyLen {
		return request{}, errKeyTooLong
	}
	delta := int64(1)
	tok, extra := nextToken(rest2)
	if len(tok) != 0 {
		if extra != nil {
			return request{}, errBadArgs
		}
		//lint:allow cuckoovet:allocfree the delta token is copied for strconv; counter verbs pay one bounded copy, GET/SET none
		d, err := strconv.ParseInt(string(tok), 10, 64)
		if err != nil {
			return request{}, errBadDelta
		}
		delta = d
	} else if operandRequired {
		return request{}, errBadArgs
	}
	if op == opDecr {
		delta = -delta
	}
	return request{op: op, key: key, delta: delta}, nil
}

// parseCAS parses CAS <key> <old> <new>. old is a single token (a CAS
// against a value containing spaces is not expressible in this text
// protocol); new is the rest of the line and may contain spaces.
func parseCAS(rest []byte) (request, error) {
	key, rest2 := nextToken(rest)
	old, newVal := nextToken(rest2)
	if len(key) == 0 || len(old) == 0 || newVal == nil {
		return request{}, errBadArgs
	}
	if len(key) > maxKeyLen {
		return request{}, errKeyTooLong
	}
	return request{op: opCAS, key: key, old: old, val: newVal}, nil
}

// handoffMaxBytes bounds one HANDOFF bulk payload. A length past it is a
// protocol violation that closes the connection: the payload bytes are
// already in flight behind the request line, so the stream cannot be
// resynchronized by skipping the line alone.
const (
	handoffMaxBytes = 64 << 20
	handoffMaxStr   = "67108864"
)

func parseHandoff(rest []byte) (request, error) {
	tok, extra := nextToken(rest)
	if len(tok) == 0 || extra != nil {
		return request{}, errBadArgs
	}
	//lint:allow cuckoovet:allocfree HANDOFF is a rare bulk-transfer verb; its length token is copied for strconv
	n, err := strconv.ParseUint(string(tok), 10, 64)
	if err != nil || n == 0 || n > handoffMaxBytes {
		return request{}, errBadPayload
	}
	return request{op: opHandoff, payload: n}, nil
}

//cuckoo:coldpath MIGRATE is a rare admin verb; it copies every operand out of the read buffer by design
func parseMigrate(rest []byte) (request, error) {
	fields := bytes.Fields(rest)
	if len(fields) != 6 {
		return request{}, errBadMigrate
	}
	mode := string(bytes.ToLower(fields[0]))
	if mode != "home" && mode != "shed" {
		return request{}, errBadMigrate
	}
	seed, err := strconv.ParseUint(string(fields[3]), 10, 64)
	if err != nil {
		return request{}, errBadMigrate
	}
	max, err := strconv.ParseUint(string(fields[4]), 10, 32)
	if err != nil {
		return request{}, errBadMigrate
	}
	return request{op: opMigrate, mig: &migrateArgs{
		mode: mode,
		dest: string(fields[1]),
		self: string(fields[2]),
		seed: seed,
		max:  int(max),
		ring: string(fields[5]),
	}}, nil
}

func parseKeyOnly(op opCode, rest []byte) (request, error) {
	key, extra := nextToken(rest)
	if len(key) == 0 || extra != nil {
		return request{}, errBadArgs
	}
	if len(key) > maxKeyLen {
		return request{}, errKeyTooLong
	}
	return request{op: op, key: key}, nil
}

// asciiEqualFold reports whether b equals the upper-case ASCII literal s
// case-insensitively, without allocating.
func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// Response writers. Each writes into the connection's buffered writer;
// nothing reaches the socket until the batch flush.

func writeOK(w *bufio.Writer) {
	w.WriteString("OK\n")
}

func writeMiss(w *bufio.Writer) {
	w.WriteString("MISS\n")
}

// writeValue renders a GET hit; with writeMiss it is the whole of the
// read path's reply surface.
//
//cuckoo:hotpath the GET reply writer
func writeValue(w *bufio.Writer, val string) {
	w.WriteString("VALUE ")
	w.WriteString(val)
	w.WriteByte('\n')
}

func writeTTL(w *bufio.Writer, d time.Duration, persistent bool) {
	w.WriteString("TTL ")
	if persistent {
		w.WriteString("-1")
	} else {
		ms := d.Milliseconds()
		if ms < 1 {
			ms = 1 // live but sub-millisecond: never report 0 for a hit
		}
		w.WriteString(strconv.FormatInt(ms, 10))
	}
	w.WriteByte('\n')
}

func writeErr(w *bufio.Writer, err error) {
	w.WriteString("ERR ")
	w.WriteString(err.Error())
	w.WriteByte('\n')
}

func writeStats(w *bufio.Writer, lines []Stat) {
	for _, s := range lines {
		w.WriteString("STAT ")
		w.WriteString(s.Name)
		w.WriteByte(' ')
		w.WriteString(s.Value)
		w.WriteByte('\n')
	}
	w.WriteString("END\n")
}

func writeCluster(w *bufio.Writer, lines []Stat) {
	for _, s := range lines {
		w.WriteString("CLUSTER ")
		w.WriteString(s.Name)
		w.WriteByte(' ')
		w.WriteString(s.Value)
		w.WriteByte('\n')
	}
	w.WriteString("END\n")
}

func writeConflict(w *bufio.Writer) {
	w.WriteString("CONFLICT\n")
}

func writeQueued(w *bufio.Writer) {
	w.WriteString("QUEUED\n")
}

// writeExecResults renders an EXEC reply: a header naming the result
// count, then one reply line per queued op in queue order.
func writeExecResults(w *bufio.Writer, results []txn.Result) {
	w.WriteString("EXEC ")
	w.WriteString(strconv.Itoa(len(results)))
	w.WriteByte('\n')
	for i := range results {
		switch results[i].Status {
		case txn.StatusOK:
			writeOK(w)
		case txn.StatusValue:
			writeValue(w, results[i].Value)
		case txn.StatusMiss:
			writeMiss(w)
		case txn.StatusConflict:
			writeConflict(w)
		default:
			w.WriteString("ERR ")
			w.WriteString(results[i].Err)
			w.WriteByte('\n')
		}
	}
}

func writeMigrated(w *bufio.Writer, count int) {
	w.WriteString("MIGRATED ")
	w.WriteString(strconv.Itoa(count))
	w.WriteByte('\n')
}

func writeHandoff(w *bufio.Writer, loaded int) {
	w.WriteString("HANDOFF ")
	w.WriteString(strconv.Itoa(loaded))
	w.WriteByte('\n')
}

// writeValueV renders a GETV hit: "VALUEV <ver> <val>". The version
// word precedes the value because values may contain spaces — parsers
// split twice and take the rest, like HOTKEY lines.
//
//cuckoo:hotpath the versioned GET reply writer
func writeValueV(w *bufio.Writer, ver uint64, val string) {
	w.WriteString("VALUEV ")
	var num [20]byte
	//lint:allow cuckoovet:allocfree AppendUint into the stack scratch never allocates
	w.Write(strconv.AppendUint(num[:0], ver, 10))
	w.WriteByte(' ')
	w.WriteString(val)
	w.WriteByte('\n')
}

// writeVer acknowledges a versioned write (SETV, accepted SETL).
func writeVer(w *bufio.Writer, ver uint64) {
	w.WriteString("VER ")
	var num [20]byte
	w.Write(strconv.AppendUint(num[:0], ver, 10))
	w.WriteByte('\n')
}

// writeLease renders a granted fill token: "LEASE <token-hex> <ttl_ms>".
func writeLease(w *bufio.Writer, token uint64, ttlMS int64) {
	w.WriteString("LEASE ")
	var num [20]byte
	w.Write(strconv.AppendUint(num[:0], token, 16))
	w.WriteByte(' ')
	w.Write(strconv.AppendInt(num[:0], ttlMS, 10))
	w.WriteByte('\n')
}

// writeWait tells a non-winning client how long to back off before
// retrying its LEASE: "WAIT <ms>".
func writeWait(w *bufio.Writer, ms int64) {
	w.WriteString("WAIT ")
	var num [20]byte
	w.Write(strconv.AppendInt(num[:0], ms, 10))
	w.WriteByte('\n')
}

// writeStaleValue serves an expired-but-present copy while a fill is in
// flight: "STALE <ver> <val>".
func writeStaleValue(w *bufio.Writer, ver uint64, val string) {
	w.WriteString("STALE ")
	var num [20]byte
	w.Write(strconv.AppendUint(num[:0], ver, 10))
	w.WriteByte(' ')
	w.WriteString(val)
	w.WriteByte('\n')
}

// writeStale is the REPLSET/REPLDEL "your write lost" reply: the local
// copy was newer, nothing was applied. Distinct from STALE-with-value so
// mirror senders can treat it as success without parsing further.
func writeStale(w *bufio.Writer) {
	w.WriteString("STALE\n")
}

// writeHotKeys renders a HOTKEYS reply: one "HOTKEY <count> <key>" line
// per tracked key, hottest first, then END. count precedes key because
// keys may contain spaces-free tokens of any content while count is
// always a single integer — parsers split twice and take the rest.
func writeHotKeys(w *bufio.Writer, items []obs.TopKItem) {
	for i := range items {
		w.WriteString("HOTKEY ")
		w.WriteString(strconv.FormatUint(items[i].Count, 10))
		w.WriteByte(' ')
		w.WriteString(items[i].Key)
		w.WriteByte('\n')
	}
	w.WriteString("END\n")
}
