package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"os"
	"strconv"
	"time"

	"cuckoohash/internal/obs"
	"cuckoohash/internal/txn"
)

// Compile-time: the codec's TRACE id bound equals the span scratch size,
// so an accepted trace ID always fits the per-connection span.
var _ = [1]struct{}{}[maxTraceIDLen-obs.MaxTraceIDLen]

const (
	connReadBuf  = 64 << 10
	connWriteBuf = 64 << 10
)

// errLineTooLong is reported when a request exceeds the read buffer; the
// connection is closed because resynchronizing mid-line is not possible.
var errLineTooLong = errors.New("request line too long")

// errBusy is the overload fast-fail ("ERR busy" on the wire): the request
// was rejected without executing and may be retried after backoff.
var errBusy = errors.New("busy")

// maxTxnOps bounds one MULTI's queue so a client cannot grow server-side
// state without limit; past it the transaction is poisoned and EXEC fails.
const maxTxnOps = 64

// connState is the per-connection request-loop state. latShard pins the
// connection to one shard of the sampled-latency histogram (assigned from
// the monotonically increasing connection count), so latency recording
// never shares a cache line with another connection. It doubles as the
// split-counter shard hint, for the same reason it exists at all: it is
// this connection's stable, collision-spread identity.
type connState struct {
	remote   string
	latShard uint64
	reqCount uint64

	// span is this connection's cuckootrace scratch: stage timings and
	// the wire trace ID of the request in flight. Armed per request by
	// serveBatchHead; disarmed spans never read the clock.
	span obs.Span
	// outcome classifies the request in flight for the flight recorder.
	outcome obs.Outcome

	// MULTI state. Queued ops copy their keys/values out of the read
	// buffer (the buffer is recycled long before EXEC). txnBad poisons
	// the transaction on any queue-time error; EXEC then refuses to run
	// a partial op list.
	inTxn  bool
	txnBad bool
	txnOps []txn.Op
}

// resetTxn drops all MULTI state, e.g. after EXEC or DISCARD.
func (cs *connState) resetTxn() {
	cs.inTxn, cs.txnBad, cs.txnOps = false, false, nil
}

// handleConn runs one connection's request loop. The loop is the
// server-side analogue of the paper's batching principle (§4.3.2 amortizes
// per-operation overhead across a batch): it blocks for the first request,
// then keeps parsing requests for as long as the read buffer has complete
// lines, and flushes the write buffer once per such batch. A client that
// pipelines N requests costs one read syscall, one write syscall, and one
// latency-sample clock pair — not N of each.
func (s *Server) handleConn(nc net.Conn) {
	defer s.forgetConn(nc)
	cs := &connState{
		remote:   nc.RemoteAddr().String(),
		latShard: s.cache.stats.connsTotal.Add(1),
	}
	// A handler panic is exactly the incident the flight recorder exists
	// for: dump the recent-operation tail before re-panicking so the
	// crash log shows what the server was doing, not just where it died.
	defer func() {
		if p := recover(); p != nil {
			s.log.Error("panic in connection handler",
				"remote", cs.remote, "panic", p,
				"recent_ops", s.flight.Summary(flightDumpOps))
			panic(p)
		}
	}()
	s.cache.stats.connsActive.Add(1)
	defer s.cache.stats.connsActive.Add(-1)

	r := bufio.NewReaderSize(nc, connReadBuf)
	w := bufio.NewWriterSize(nc, connWriteBuf)

	for {
		// Blocking read for the head of the next batch, bounded by the
		// idle timeout so abandoned connections release their resources.
		s.armReadDeadline(nc, s.cfg.IdleTimeout)
		line, err := readLine(r)
		if err != nil {
			// A shutdown wakes blocked readers via a past read deadline;
			// flush whatever a slow client has not consumed and drop out.
			switch {
			case errors.Is(err, errLineTooLong):
				s.log.Warn("closing connection", "remote", cs.remote, "err", err)
			case errors.Is(err, os.ErrDeadlineExceeded) && !s.draining.Load():
				s.cache.stats.idleClosed.Add(1)
				s.log.Debug("closing idle connection", "remote", cs.remote,
					"idle_timeout", s.cfg.IdleTimeout)
			case !errors.Is(err, io.EOF) && !s.draining.Load():
				s.log.Debug("connection closed", "remote", cs.remote, "err", err)
			}
			w.Flush()
			return
		}
		// One write deadline covers the whole batch — including bufio's
		// automatic mid-batch flushes when responses overflow the buffer —
		// so a client that stops reading cannot pin the handler (and its
		// wg slot) forever.
		if s.cfg.IOTimeout > 0 {
			nc.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout))
		}
		quit := s.serveBatchHead(line, r, w, cs)
		if err := w.Flush(); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.cache.stats.ioTimeouts.Add(1)
				s.log.Warn("write timed out; closing connection",
					"remote", cs.remote, "io_timeout", s.cfg.IOTimeout)
			}
			return
		}
		if quit {
			return
		}
		if s.draining.Load() {
			// Drain: the batch in flight was completed and flushed; now
			// close instead of blocking on a read that will never come.
			return
		}
	}
}

// armReadDeadline sets the idle deadline for the next blocking read without
// racing Shutdown's wake-up: Shutdown stores draining (under s.mu) before
// stamping every connection with an already-expired deadline, so arming
// first and re-checking draining after guarantees we either observe the
// drain or Shutdown observes (and overwrites) our fresh deadline.
func (s *Server) armReadDeadline(nc net.Conn, d time.Duration) {
	if d <= 0 {
		return
	}
	nc.SetReadDeadline(time.Now().Add(d))
	if s.draining.Load() {
		nc.SetReadDeadline(time.Now())
	}
}

// serveBatchHead processes line and then every further request already
// buffered, returning true if the client asked to quit.
func (s *Server) serveBatchHead(line []byte, r *bufio.Reader, w *bufio.Writer, cs *connState) bool {
	st := s.cache.stats
	for {
		sample := cs.reqCount&latencySampleMask == 0
		cs.reqCount++
		// The span runs whenever it can matter: on sampled requests (they
		// feed the latency and stage histograms) and on *every* request
		// when a slow-op threshold is armed — a request over -slow-op must
		// never be dropped by sampling; it is the rare event the operator
		// asked to see. With no threshold, 15 of 16 requests never read
		// the clock.
		timed := sample || s.slowOp > 0
		if timed {
			cs.span.Arm()
		} else {
			cs.span.Disarm()
		}
		start := cs.span.Now()
		cs.outcome = obs.OutcomeOK
		req, quit := s.serveRequest(line, r, w, cs)
		var durNs int64
		if timed {
			durNs = cs.span.Now() - start
			cs.span.Finish(durNs)
			if sample {
				st.recordLatency(cs.latShard, uint64(durNs))
				st.stages.RecordSpan(verbClassOf(req.op), cs.latShard, &cs.span)
				if len(req.key) > 0 {
					st.touchHot(cs.latShard, req.key)
				}
			}
			if s.slowOp > 0 && time.Duration(durNs) >= s.slowOp {
				st.slowOps.Add(1)
				st.slowTraces.Note(cs.span.TraceBytes(), req.op.String(), float64(durNs)/1e9)
				// req.key aliases the read buffer; string() copies it
				// before the next read can clobber it.
				s.log.Warn("slow request",
					"op", req.op.String(),
					"key", string(req.key),
					"dur", time.Duration(durNs),
					"trace", cs.span.TraceString(),
					"stages", obs.SummarizeStages(cs.span.Stages()),
					"remote", cs.remote)
			}
		}
		// The flight recorder sees every request, timed or not: an
		// untimed record still carries verb, outcome, key hash and trace,
		// which is what incident dumps need most.
		rec := obs.FlightRecord{
			Verb:    req.op.String(),
			Outcome: cs.outcome,
			KeyHash: hashKey(req.key),
			TotalNs: durNs,
			Stages:  cs.span.Stages(),
		}
		rec.SetTrace(req.trace)
		s.flight.Record(cs.latShard, &rec)
		if quit {
			return true
		}
		if r.Buffered() == 0 {
			return false
		}
		var err error
		line, err = readLine(r)
		if err != nil {
			return true
		}
	}
}

// serveRequest executes one parsed request, writing its response into w.
// It reads from r only for a HANDOFF payload (the bulk bytes follow the
// request line). It returns the parsed request so the caller can
// attribute slow-op traces.
func (s *Server) serveRequest(line []byte, r *bufio.Reader, w *bufio.Writer, cs *connState) (req request, quit bool) {
	t0 := cs.span.Begin()
	req, err := parseRequest(line)
	cs.span.End(obs.StageParse, t0)
	if err != nil {
		// A parse failure inside MULTI poisons the transaction: EXEC
		// must not run an op list the client thinks is longer.
		if cs.inTxn {
			cs.txnBad = true
		}
		cs.outcome = obs.OutcomeBad
		writeErr(w, err)
		// An oversized HANDOFF length is fatal to the connection: the
		// payload bytes are already behind the line and cannot be skipped,
		// so the stream would desynchronize into garbage commands.
		return request{op: opBad}, errors.Is(err, errBadPayload)
	}
	if req.trace != nil {
		// Works even on a disarmed span: trace propagation (slow logs,
		// flight records, MIGRATE hops) must survive unsampled requests.
		cs.span.SetTrace(req.trace)
	}
	// MULTI queueing happens before the in-flight gate: a queued op
	// touches only this connection's buffer, never the cache. EXEC,
	// DISCARD, and MULTI itself fall through to dispatch (a nested MULTI
	// is an error, but — like Redis — not one that aborts the queue).
	if cs.inTxn && req.op != opExec && req.op != opDiscard && req.op != opMulti {
		if req.op == opQuit {
			return req, true
		}
		s.queueTxnOp(w, cs, req)
		return req, false
	}
	// In-flight limit: cache-touching ops past MaxInflight fail fast with
	// "ERR busy" (retryable; the request did not execute) instead of
	// queueing behind a saturated table. STATS stays exempt so operators
	// can always observe an overloaded server, QUIT so drains always
	// work, and CLUSTER so rebalance decisions can be made while the
	// node is overloaded — which is exactly when they matter.
	// HOTKEYS is exempt like STATS: it only folds the sketches, never
	// touches the cache, and is most useful exactly when the server is
	// overloaded by a hot key.
	if s.inflight != nil && req.op != opStats && req.op != opQuit && req.op != opCluster &&
		req.op != opMulti && req.op != opDiscard && req.op != opHotKeys {
		t0 = cs.span.Begin()
		select {
		case s.inflight <- struct{}{}:
			cs.span.End(obs.StageDispatch, t0)
			defer func() { <-s.inflight }()
		default:
			cs.span.End(obs.StageDispatch, t0)
			s.cache.stats.busyRejected.Add(1)
			cs.outcome = obs.OutcomeBusy
			writeErr(w, errBusy)
			return req, false
		}
	}
	if s.dispatchFast(req, w, cs) {
		return req, false
	}
	switch req.op {
	case opDel:
		if s.cache.DeleteTraced(string(req.key), &cs.span) {
			s.leaseInvalidate(req.key)
			writeOK(w)
		} else {
			writeMiss(w)
		}
	case opTTL:
		if d, ok := s.cache.TTL(string(req.key)); ok {
			writeTTL(w, d, d == 0)
		} else {
			writeMiss(w)
		}
	case opStats:
		writeStats(w, s.cache.Snapshot(s.cache.stats))
	case opCluster:
		writeCluster(w, s.clusterInfo())
	case opHotKeys:
		writeHotKeys(w, s.cache.stats.HotKeys(int(req.delta)))
	case opGetV:
		if v, ver, ok := s.cache.GetVBytesTraced(req.key, &cs.span); ok {
			writeValueV(w, ver, v)
		} else {
			writeMiss(w)
		}
	case opSetV:
		s.dispatchSetV(req, w, cs)
	case opLease:
		s.dispatchLease(req, w, cs)
	case opSetLease:
		s.dispatchSetLease(req, w, cs)
	case opReplSet:
		t0 := cs.span.Begin()
		applied, err := s.cache.applyReplicaSet(string(req.key),
			entry{val: string(req.val), expireAt: req.delta, ver: req.ver}, &cs.span)
		cs.span.End(obs.StageRepl, t0)
		switch {
		case err != nil:
			s.replyErr(w, cs, err)
		case applied:
			s.cache.stats.replApplied.Add(1)
			s.leaseInvalidate(req.key)
			writeOK(w)
		default:
			s.cache.stats.replStale.Add(1)
			writeStale(w)
		}
	case opReplDel:
		t0 := cs.span.Begin()
		applied := s.cache.applyReplicaDel(string(req.key), req.ver, &cs.span)
		cs.span.End(obs.StageRepl, t0)
		if applied {
			s.cache.stats.replApplied.Add(1)
			s.leaseInvalidate(req.key)
			writeOK(w)
		} else {
			s.cache.stats.replStale.Add(1)
			writeStale(w)
		}
	case opMigrate:
		if n, err := s.Migrate(req.mig, req.trace); err != nil {
			s.replyErr(w, cs, err)
		} else {
			writeMigrated(w, n)
		}
	case opHandoff:
		if err := s.applyHandoff(r, w, req.payload, &cs.span); err != nil {
			// The payload never arrived in full; the stream is undefined.
			s.log.Warn("handoff payload truncated", "err", err)
			cs.outcome = obs.OutcomeErr
			return req, true
		}
	case opIncr, opDecr, opAdd:
		if err := s.cache.IncrTraced(string(req.key), req.delta, cs.latShard, &cs.span); err != nil {
			s.replyErr(w, cs, err)
		} else {
			writeOK(w)
		}
	case opMaxUpdate:
		if err := s.cache.MaxUpdateTraced(string(req.key), req.delta, cs.latShard, &cs.span); err != nil {
			s.replyErr(w, cs, err)
		} else {
			writeOK(w)
		}
	case opCAS:
		res, err := s.cache.CASTraced(string(req.key), string(req.old), string(req.val), &cs.span)
		switch {
		case err != nil:
			s.replyErr(w, cs, err)
		case res == txn.CASStored:
			writeOK(w)
		case res == txn.CASMiss:
			writeMiss(w)
		default:
			writeConflict(w)
		}
	case opMulti:
		if cs.inTxn {
			s.replyErr(w, cs, errNestedMulti)
		} else {
			cs.inTxn = true
			writeOK(w)
		}
	case opExec:
		switch {
		case !cs.inTxn:
			s.replyErr(w, cs, errNoMulti)
		case cs.txnBad:
			cs.resetTxn()
			s.replyErr(w, cs, errTxnAborted)
		default:
			writeExecResults(w, s.cache.ExecTraced(cs.txnOps, &cs.span))
			cs.resetTxn()
		}
	case opDiscard:
		if !cs.inTxn {
			s.replyErr(w, cs, errNoMulti)
		} else {
			cs.resetTxn()
			writeOK(w)
		}
	case opQuit:
		return req, true
	}
	return req, false
}

// dispatchFast executes the hot verbs — GET, SET, SETEX — and reports
// whether it handled the request; everything else falls through to
// serveRequest's full switch. The split exists so the allocation proof
// has a root covering exactly the per-request steady state: a GET runs
// from read buffer to reply writer without touching the allocator, and
// a SET allocates exactly the two copies it stores.
//
//cuckoo:hotpath dispatch for GET/SET/SETEX; GET is proven allocation-free end to end
func (s *Server) dispatchFast(req request, w *bufio.Writer, cs *connState) bool {
	switch req.op {
	case opGet:
		if v, ok := s.cache.GetBytesTraced(req.key, &cs.span); ok {
			writeValue(w, v)
		} else {
			writeMiss(w)
		}
	case opSet, opSetEx:
		//lint:allow cuckoovet:allocfree SET's two inherent copies: the stored key and value must outlive the connection read buffer
		if err := s.cache.SetTraced(string(req.key), string(req.val), req.ttl, &cs.span); err != nil {
			s.replyErr(w, cs, err)
		} else {
			s.leaseInvalidate(req.key)
			writeOK(w)
		}
	default:
		return false
	}
	return true
}

// dispatchSetV handles SETV: a SET that acknowledges with the write's
// version word so version-aware clients can maintain a monotonic floor
// for their own writes. The version is read back from the table rather
// than threaded out of the store: if a concurrent writer has already
// replaced the entry, the later version is reported, which only
// tightens the client's floor (and VER 0 means the entry was evicted
// between store and read-back — the client learns nothing, safely).
func (s *Server) dispatchSetV(req request, w *bufio.Writer, cs *connState) {
	key := string(req.key)
	if err := s.cache.SetTraced(key, string(req.val), req.ttl, &cs.span); err != nil {
		s.replyErr(w, cs, err)
		return
	}
	s.leaseInvalidate(req.key)
	writeVer(w, s.cache.versionOf(key))
}

// dispatchLease handles LEASE, the miss-storm collapse verb. A live hit
// short-circuits to VALUEV (the common case once the key is filled).
// Otherwise the first caller wins the fill lease and gets LEASE
// <token> <ttl_ms>; later callers are served the expired copy as
// STALE <ver> <val> when one is still in the table, or told to WAIT.
func (s *Server) dispatchLease(req request, w *bufio.Writer, cs *connState) {
	val, ver, state := s.cache.leaseProbe(req.key, &cs.span)
	if state == probeLive {
		writeValueV(w, ver, val)
		return
	}
	st := s.cache.stats
	t0 := cs.span.Begin()
	token, granted, waitMS := s.leases.Acquire(string(req.key), time.Now().UnixNano())
	cs.span.End(obs.StageLease, t0)
	switch {
	case granted:
		st.leaseGrants.Add(1)
		writeLease(w, token, s.leases.TTLMillis())
	case state == probeStale:
		st.leaseStaleServes.Add(1)
		writeStaleValue(w, ver, val)
	default:
		st.leaseWaits.Add(1)
		writeWait(w, waitMS)
	}
}

// dispatchSetLease handles SETL, the lease winner's fill. The token is
// validated-and-released atomically first: a fill racing a fresher SET
// or DEL (which invalidated the lease) is rejected with MISS and stores
// nothing, so a slow filler can never resurrect data a newer write
// superseded. An accepted fill stores through the normal SET path —
// versioned, mirrored, evicting — and acknowledges like SETV.
func (s *Server) dispatchSetLease(req request, w *bufio.Writer, cs *connState) {
	st := s.cache.stats
	key := string(req.key)
	t0 := cs.span.Begin()
	ok := s.leases.ValidateRelease(key, req.ver, time.Now().UnixNano())
	cs.span.End(obs.StageLease, t0)
	if !ok {
		st.leaseRejects.Add(1)
		writeMiss(w)
		return
	}
	if err := s.cache.SetTraced(key, string(req.val), req.ttl, &cs.span); err != nil {
		s.replyErr(w, cs, err)
		return
	}
	st.leaseFills.Add(1)
	writeVer(w, s.cache.versionOf(key))
}

// leaseInvalidate kills any outstanding fill lease on key after a
// client-visible write, so an in-flight SETL holding a now-stale token
// loses its ValidateRelease. Gated on one atomic load: the hot write
// path pays nothing when no leases are outstanding anywhere.
func (s *Server) leaseInvalidate(key []byte) {
	// nil-safe: tests drive dispatch on hand-built Servers without a
	// lease table; production servers always get one from New.
	if s.leases != nil && s.leases.Active() > 0 {
		s.leases.Invalidate(string(key))
	}
}

// replyErr writes an error reply and classifies the request for the
// flight recorder.
func (s *Server) replyErr(w *bufio.Writer, cs *connState, err error) {
	cs.outcome = obs.OutcomeErr
	writeErr(w, err)
}

// hashKey is FNV-1a over the key bytes: flight records keep a hash, not
// the key, so /debug/flight never leaks key material while still letting
// an operator correlate records of the same key.
func hashKey(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

var (
	errNestedMulti = errors.New("MULTI calls cannot be nested")
	errNoMulti     = errors.New("no MULTI in progress")
	errTxnAborted  = errors.New("transaction aborted by a queue-time error")
	errTxnTooLong  = errors.New("transaction exceeds " + strconv.Itoa(maxTxnOps) + " ops")
	errNotInTxn    = errors.New("command is not allowed inside MULTI")
)

// queueTxnOp buffers one request of an open MULTI. Keys and values are
// copied out of the read buffer here — the buffer is long recycled by
// the time EXEC runs. Any rejection poisons the transaction so a partial
// op list can never commit.
func (s *Server) queueTxnOp(w *bufio.Writer, cs *connState, req request) {
	if cs.txnBad {
		s.replyErr(w, cs, errTxnAborted)
		return
	}
	if len(cs.txnOps) >= maxTxnOps {
		cs.txnBad = true
		s.replyErr(w, cs, errTxnTooLong)
		return
	}
	op := txn.Op{Key: string(req.key)}
	switch req.op {
	case opGet:
		op.Kind = txn.OpGet
	case opSet:
		op.Kind, op.Val = txn.OpSet, string(req.val)
	case opSetEx:
		op.Kind, op.Val = txn.OpSet, string(req.val)
		op.ExpireAt = time.Now().Add(req.ttl).UnixNano()
	case opDel:
		op.Kind = txn.OpDel
	case opIncr, opDecr, opAdd:
		op.Kind, op.Delta = txn.OpIncr, req.delta
	case opMaxUpdate:
		op.Kind, op.Delta = txn.OpMax, req.delta
	case opCAS:
		op.Kind, op.Old, op.Val = txn.OpCAS, string(req.old), string(req.val)
	default:
		// Admin and bulk verbs (STATS, CLUSTER, MIGRATE, HANDOFF, MULTI)
		// have no transactional meaning; reject and poison.
		cs.txnBad = true
		s.replyErr(w, cs, errNotInTxn)
		return
	}
	cs.txnOps = append(cs.txnOps, op)
	writeQueued(w)
}

// readLine returns the next \n-terminated line with the terminator (and a
// preceding \r, if any) stripped. The line aliases the reader's buffer.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err != nil {
		if errors.Is(err, bufio.ErrBufferFull) {
			return nil, errLineTooLong
		}
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}
