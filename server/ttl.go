package server

import (
	"time"
)

// sweepBatch bounds how many expired keys one shard sheds per sweep pass,
// so each Range walk stays short (the same critical-section-shortening
// discipline the table itself follows). Range locks one bucket stripe at
// a time — never the whole table — so concurrent traffic keeps flowing
// while the sweep scans; it also folds any in-flight incremental resize
// first, which makes the sweeper double as a migration-drain backstop on
// shards that stop seeing writes mid-grow.
const sweepBatch = 1024

// Sweep scans every shard once and deletes entries whose TTL has passed,
// returning how many it removed. The scan collects victims during the
// stripe-at-a-time Range walk but deletes them afterwards with the
// ordinary per-key locks, so writers are only briefly excluded.
func (c *Cache) Sweep() uint64 {
	now := time.Now().UnixNano()
	var removed uint64
	victims := make([]string, 0, 64)
	for si, s := range c.shards {
		victims = victims[:0]
		s.table.Range(func(key string, e entry) bool {
			if e.expired(now) {
				victims = append(victims, key)
			}
			return len(victims) < sweepBatch
		})
		for _, key := range victims {
			if c.expireKey(si, key) {
				removed++
			}
		}
	}
	return removed
}

// sweeper runs Sweep every interval until stop is closed.
func (c *Cache) sweeper(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			start := time.Now()
			removed := c.Sweep()
			c.stats.sweeps.Add(1)
			if removed > 0 {
				c.log.Debug("ttl sweep",
					"removed", removed,
					"dur", time.Since(start))
			}
		case <-stop:
			return
		}
	}
}
