package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// startServer launches a daemon on a loopback port and returns it; the
// test cleans it up.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve() }()
	t.Cleanup(func() {
		s.Close()
		if err := <-serveErr; err != ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return s
}

type rawClient struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func dialRaw(t *testing.T, s *Server) *rawClient {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawClient{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (c *rawClient) send(lines string) {
	c.t.Helper()
	if _, err := io.WriteString(c.conn, lines); err != nil {
		c.t.Fatal(err)
	}
}

func (c *rawClient) readLine() string {
	c.t.Helper()
	line, err := c.r.ReadString('\n')
	if err != nil {
		c.t.Fatal(err)
	}
	return strings.TrimRight(line, "\r\n")
}

func (c *rawClient) roundTrip(req string) string {
	c.t.Helper()
	c.send(req + "\n")
	return c.readLine()
}

func TestProtocolBasics(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	cases := []struct{ req, want string }{
		{"GET missing", "MISS"},
		{"SET k1 hello world", "OK"}, // values may contain spaces
		{"GET k1", "VALUE hello world"},
		{"set k1 lower-case-verb", "OK"},
		{"GET k1", "VALUE lower-case-verb"},
		{"TTL k1", "TTL -1"},
		{"DEL k1", "OK"},
		{"DEL k1", "MISS"},
		{"TTL k1", "MISS"},
		{"SET toolong" + strings.Repeat("x", 300) + " v", "ERR key exceeds 250 bytes"},
		{"SET justkey", "ERR wrong number of arguments"},
		{"SETEX k2 notanumber v", "ERR ttl must be a positive integer (milliseconds)"},
		{"BOGUS x", "ERR unknown command"},
		{"", "ERR empty command"},
	}
	for _, tc := range cases {
		if got := c.roundTrip(tc.req); got != tc.want {
			t.Errorf("%q -> %q, want %q", tc.req, got, tc.want)
		}
	}
}

func TestPipelining(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	// One write carrying a whole batch; responses must come back in
	// order, and the server should answer them all.
	var b strings.Builder
	const n = 100
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "SET key%d val%d\n", i, i)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "GET key%d\n", i)
	}
	c.send(b.String())
	for i := 0; i < n; i++ {
		if got := c.readLine(); got != "OK" {
			t.Fatalf("SET %d -> %q", i, got)
		}
	}
	for i := 0; i < n; i++ {
		if got, want := c.readLine(), fmt.Sprintf("VALUE val%d", i); got != want {
			t.Fatalf("GET %d -> %q, want %q", i, got, want)
		}
	}
}

func TestCRLFAndQuit(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)
	c.send("SET a 1\r\nGET a\r\nQUIT\r\n")
	if got := c.readLine(); got != "OK" {
		t.Fatalf("SET -> %q", got)
	}
	if got := c.readLine(); got != "VALUE 1" {
		t.Fatalf("GET -> %q", got)
	}
	if _, err := c.r.ReadString('\n'); err != io.EOF {
		t.Fatalf("after QUIT want EOF, got %v", err)
	}
}

func TestTTLLazyExpiry(t *testing.T) {
	// Sweeper disabled: expiry must still happen lazily on access.
	s := startServer(t, Config{SweepInterval: -1})
	c := dialRaw(t, s)

	if got := c.roundTrip("SETEX k 40 v"); got != "OK" {
		t.Fatalf("SETEX -> %q", got)
	}
	if got := c.roundTrip("GET k"); got != "VALUE v" {
		t.Fatalf("GET before expiry -> %q", got)
	}
	ttl := c.roundTrip("TTL k")
	if !strings.HasPrefix(ttl, "TTL ") || ttl == "TTL -1" {
		t.Fatalf("TTL -> %q, want positive milliseconds", ttl)
	}
	time.Sleep(60 * time.Millisecond)
	if got := c.roundTrip("GET k"); got != "MISS" {
		t.Fatalf("GET after expiry -> %q", got)
	}
	if got := s.Cache().Stats().Expired(); got != 1 {
		t.Fatalf("expired counter = %d, want 1", got)
	}
	// DEL of an expired entry reports MISS, not OK.
	if got := c.roundTrip("SETEX k2 1 v"); got != "OK" {
		t.Fatalf("SETEX k2 -> %q", got)
	}
	time.Sleep(20 * time.Millisecond)
	if got := c.roundTrip("DEL k2"); got != "MISS" {
		t.Fatalf("DEL expired -> %q", got)
	}
}

func TestSweeperRemovesExpired(t *testing.T) {
	s := startServer(t, Config{SweepInterval: 10 * time.Millisecond})
	c := dialRaw(t, s)
	for i := 0; i < 50; i++ {
		if got := c.roundTrip(fmt.Sprintf("SETEX s%d 30 v", i)); got != "OK" {
			t.Fatalf("SETEX -> %q", got)
		}
	}
	if got := s.Cache().Len(); got != 50 {
		t.Fatalf("Len = %d, want 50", got)
	}
	// Without any further GETs, the sweeper alone must reclaim them.
	deadline := time.Now().Add(2 * time.Second)
	for s.Cache().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sweeper left %d entries after 2s", s.Cache().Len())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.Cache().Stats().Expired(); got != 50 {
		t.Fatalf("expired counter = %d, want 50", got)
	}
}

func TestEvictionOnFull(t *testing.T) {
	// One tiny shard: inserts beyond capacity must evict, not error.
	s := startServer(t, Config{Shards: 1, SlotsPerShard: 128, SweepInterval: -1})
	c := dialRaw(t, s)
	const n = 1000
	for i := 0; i < n; i++ {
		if got := c.roundTrip(fmt.Sprintf("SET e%d v%d", i, i)); got != "OK" {
			t.Fatalf("SET %d -> %q (cache should evict, not fail)", i, got)
		}
	}
	st := s.Cache().Stats()
	if st.Evictions() == 0 {
		t.Fatal("no evictions recorded after overfilling the cache")
	}
	if got, capSlots := s.Cache().Len(), s.Cache().Cap(); got > capSlots {
		t.Fatalf("Len %d exceeds capacity %d", got, capSlots)
	}
	// The most recent key must have survived (FIFO evicts oldest first).
	if got := c.roundTrip(fmt.Sprintf("GET e%d", n-1)); !strings.HasPrefix(got, "VALUE") {
		t.Fatalf("most recent key evicted: %q", got)
	}
}

func TestStatsCommand(t *testing.T) {
	s := startServer(t, Config{Shards: 2})
	c := dialRaw(t, s)
	c.roundTrip("SET a 1")
	c.roundTrip("GET a")
	c.roundTrip("GET nope")

	c.send("STATS\n")
	stats := map[string]string{}
	for {
		line := c.readLine()
		if line == "END" {
			break
		}
		fields := strings.SplitN(line, " ", 3)
		if len(fields) != 3 || fields[0] != "STAT" {
			t.Fatalf("malformed STATS line %q", line)
		}
		stats[fields[1]] = fields[2]
	}
	for name, want := range map[string]string{
		"entries": "1", "gets": "2", "hits": "1", "misses": "1",
		"sets": "1", "hit_ratio": "0.5000", "shards": "2",
		"conns_active": "1", "conns_total": "1",
	} {
		if got := stats[name]; got != want {
			t.Errorf("STAT %s = %q, want %q", name, got, want)
		}
	}
	for _, name := range []string{"lat_p50_ns", "lat_p99_ns", "lat_p999_ns", "shard0_entries", "shard1_entries"} {
		if _, ok := stats[name]; !ok {
			t.Errorf("STATS missing %s", name)
		}
	}
}

func TestLineTooLong(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)
	// A request longer than the 64 KiB read buffer cannot be parsed or
	// resynchronized; the server must drop the connection.
	c.send("SET big " + strings.Repeat("x", 2*connReadBuf) + "\n")
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("oversized request not rejected")
	}
}

func TestShutdownDrainsIdleConns(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)
	if got := c.roundTrip("SET a 1"); got != "OK" {
		t.Fatalf("SET -> %q", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The idle connection must see clean EOF (FIN), not a reset.
	if _, err := c.r.ReadString('\n'); err != io.EOF {
		t.Fatalf("after drain want EOF, got %v", err)
	}
	// New connections must be refused.
	if nc, err := net.Dial("tcp", s.Addr().String()); err == nil {
		nc.Close()
		t.Fatal("dial succeeded after shutdown")
	}
}

func TestShutdownFlushesInFlightBatch(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	// Send a pipelined batch and immediately shut down: every request in
	// the batch must still get its response before the FIN.
	var b strings.Builder
	const n = 50
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "SET d%d v\nGET d%d\n", i, i)
	}
	c.send(b.String())
	// Wait until the handler has started the batch: its first buffer fill
	// slurps the whole pipelined burst, so from the first processed SET
	// onward the batch completes from the read buffer without touching
	// the socket again — exactly the window the drain must respect.
	for deadline := time.Now().Add(2 * time.Second); s.Cache().Len() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("server never started processing the batch")
		}
		time.Sleep(100 * time.Microsecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for i := 0; i < n; i++ {
		if got := c.readLine(); got != "OK" {
			t.Fatalf("batch SET %d -> %q", i, got)
		}
		if got := c.readLine(); got != "VALUE v" {
			t.Fatalf("batch GET %d -> %q", i, got)
		}
	}
	if _, err := c.r.ReadString('\n'); err != io.EOF {
		t.Fatalf("after drained batch want EOF, got %v", err)
	}
}
