package server

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// TestSnapshotPortabilityAcrossShardCounts proves the snapshot format is
// independent of the shard topology that wrote it: a daemon saved with S1
// shards restores completely on a daemon configured with S2 shards, in
// both directions, because LoadSnapshot routes every record through the
// normal Set path (re-hashing into whatever shards exist) instead of
// memcpy-ing shard images. TTLs are stored as absolute expiry times, so
// they survive the restart unchanged.
func TestSnapshotPortabilityAcrossShardCounts(t *testing.T) {
	cases := []struct{ saveShards, loadShards int }{
		{8, 2}, // shrink: records from 8 tables re-hash into 2
		{2, 8}, // grow: records from 2 tables spread over 8
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%dto%d", tc.saveShards, tc.loadShards), func(t *testing.T) {
			snap := filepath.Join(t.TempDir(), "cache.snap")
			const n = 400

			// First life: S1 shards, a mixed persistent/TTL keyspace,
			// graceful shutdown persists the snapshot.
			src, err := New(Config{
				Addr:         "127.0.0.1:0",
				Shards:       tc.saveShards,
				SnapshotPath: snap,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := src.Listen(); err != nil {
				t.Fatal(err)
			}
			serveErr := make(chan error, 1)
			go func() { serveErr <- src.Serve() }()
			for i := 0; i < n; i++ {
				if err := src.Cache().Set(fmt.Sprintf("p%d", i), fmt.Sprintf("v%d", i), 0); err != nil {
					t.Fatal(err)
				}
			}
			if err := src.Cache().Set("with-ttl", "tv", time.Hour); err != nil {
				t.Fatal(err)
			}
			if err := src.Shutdown(context.Background()); err != nil {
				t.Fatal(err)
			}
			if err := <-serveErr; err != ErrServerClosed {
				t.Fatalf("Serve returned %v", err)
			}

			// Second life: S2 shards, restore at Listen, full contents and
			// the TTL must survive.
			dst, err := New(Config{
				Addr:         "127.0.0.1:0",
				Shards:       tc.loadShards,
				SnapshotPath: snap,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.Listen(); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { dst.Close() })

			if got := dst.Cache().Len(); got != n+1 {
				t.Fatalf("restored entries = %d, want %d", got, n+1)
			}
			for i := 0; i < n; i++ {
				if v, ok := dst.Cache().Get(fmt.Sprintf("p%d", i)); !ok || v != fmt.Sprintf("v%d", i) {
					t.Fatalf("p%d = %q, %v after cross-shard restore", i, v, ok)
				}
			}
			if d, ok := dst.Cache().TTL("with-ttl"); !ok || d <= 0 || d > time.Hour {
				t.Fatalf("restored TTL = %v, %v; want within (0, 1h]", d, ok)
			}
			if got := dst.Cache().stats.snapLoads.Load(); got != 1 {
				t.Errorf("snapshot_loads = %d, want 1", got)
			}
		})
	}
}
