package server

// Cluster support (docs/CLUSTER.md): cuckood nodes form a static-
// membership two-choice ring — every key has a primary and an alternate
// node, computed by internal/cluster with the same hash discipline the
// table uses for its two candidate buckets. This file is the server side
// of that layer:
//
//   - CLUSTER reports the node's load figures so clients and cuckooctl
//     can make spill and rebalance decisions;
//   - MIGRATE selects keys by their ring placement and pushes them to a
//     peer in the snapshot wire format (persist.go), then deletes the
//     moved keys locally — a cuckoo kick-out between machines;
//   - HANDOFF is the receiving side of that bulk transfer: a length-
//     prefixed snapshot stream applied through the normal Set path.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"cuckoohash/internal/cluster"
	"cuckoohash/internal/obs"
)

// migrateIOTimeout bounds the outbound side of one MIGRATE: the dial of
// the destination plus the full handoff exchange. Migrations move bulk
// data, so the bound is generous; a stuck peer still cannot pin the
// handler forever.
const migrateIOTimeout = 30 * time.Second

var (
	errMigrateDest = errors.New("migrate destination is not in the ring")
	errMigrateSelf = errors.New("migrate destination equals self")
)

// migrateRec is one key selected for migration, pinned with the entry
// value observed at selection time so the post-transfer delete can skip
// keys a concurrent SET refreshed in the meantime.
type migrateRec struct {
	key string
	e   entry
}

// clusterInfo renders the node's cluster-relevant figures as CLUSTER
// response lines: identity, load, and migration counters. Load is what
// the client's spill watermark and cuckooctl's rebalance compare.
func (s *Server) clusterInfo() []Stat {
	st := s.cache.stats
	entries := s.cache.Len()
	capacity := s.cache.Cap()
	load := 0.0
	if capacity > 0 {
		load = float64(entries) / float64(capacity)
	}
	addr := s.cfg.Addr
	if s.ln != nil {
		addr = s.ln.Addr().String()
	}
	return []Stat{
		{"addr", addr},
		{"entries", fmt.Sprint(entries)},
		{"capacity", fmt.Sprint(capacity)},
		{"load", fmt.Sprintf("%.6f", load)},
		{"migrated_in", fmt.Sprint(st.migratedIn.Load())},
		{"migrated_out", fmt.Sprint(st.migratedOut.Load())},
		{"handoffs", fmt.Sprint(st.handoffs.Load())},
		{"migrate_failures", fmt.Sprint(st.migrateFails.Load())},
	}
}

// Migrate moves up to max keys (0 = unlimited) matching the mode's
// placement predicate to dest, and returns how many were moved. It is
// synchronous: selection, bulk transfer, and local deletion all complete
// before it returns, so the MIGRATED count a client reads is already
// reflected in the migrated_out counter.
// trace, when non-nil, is the requesting client's wire trace ID: it is
// forwarded on the HANDOFF hop and stamped on this node's migration
// logs, so one traced request is one trace ID across every node it
// touches.
func (s *Server) Migrate(a *migrateArgs, trace []byte) (int, error) {
	ring, err := cluster.Parse(a.ring, a.seed)
	if err != nil {
		return 0, err
	}
	if ring.Index(a.dest) < 0 {
		return 0, errMigrateDest
	}
	if a.dest == a.self {
		return 0, errMigrateSelf
	}
	recs := s.cache.selectForMigrate(ring, a.mode, a.dest, a.self, a.max)
	if len(recs) == 0 {
		return 0, nil
	}

	var buf bytes.Buffer
	enc := newSnapEncoder(&buf)
	for _, rc := range recs {
		enc.add(rc.key, rc.e)
	}
	if err := enc.finish(); err != nil {
		return 0, err
	}

	start := time.Now()
	loaded, err := sendHandoff(a.dest, buf.Bytes(), trace)
	if err != nil {
		s.cache.stats.migrateFails.Add(1)
		s.log.Warn("migrate failed", "dest", a.dest, "keys", len(recs),
			"trace", string(trace), "err", err)
		return 0, fmt.Errorf("handoff to %s: %w", a.dest, err)
	}

	// The records are durably applied on dest; remove them here. A key a
	// concurrent SET refreshed since selection is left alone — the fresh
	// value wins locally, and the (stale) copy shipped to dest is shadowed
	// for readers because this node stays the earlier choice until the
	// value expires or is rewritten. Cache-grade semantics, same contract
	// as expireKey's residual race.
	moved := 0
	for _, rc := range recs {
		if s.cache.removeIfUnchanged(rc.key, rc.e) {
			moved++
		}
	}
	s.cache.stats.migratedOut.Add(uint64(moved))
	s.log.Info("migrated keys",
		"mode", a.mode,
		"dest", a.dest,
		"selected", len(recs),
		"applied_on_dest", loaded,
		"moved", moved,
		"trace", string(trace),
		"dur", time.Since(start))
	return moved, nil
}

// selectForMigrate walks a point-in-time snapshot of every shard and
// picks keys whose ring placement matches the mode:
//
//	home: the key does NOT belong on self, and dest is one of its two
//	      candidates — repair after a membership change, and the whole
//	      of a drain (self is absent from a drain ring, so every key
//	      qualifies for one surviving candidate or the other).
//	shed: the key DOES belong on self, and dest is its other candidate —
//	      load-balancing displacement between a key's two choices.
//
// Expired entries are skipped: migration carries no obligation to
// resurrect dead data (same rule as SaveSnapshot).
func (c *Cache) selectForMigrate(ring *cluster.Ring, mode, dest, self string, max int) []migrateRec {
	var recs []migrateRec
	now := time.Now().UnixNano()
	for _, sh := range c.shards {
		// Items snapshots the shard under its lock and releases it before
		// we filter, so selection never holds a table lock across the
		// whole keyspace walk.
		for key, e := range sh.table.Items() {
			if e.expired(now) {
				continue
			}
			selfIsHome := ring.IsCandidate(key, self)
			if mode == "home" && selfIsHome {
				continue
			}
			if mode == "shed" && !selfIsHome {
				continue
			}
			if !ring.IsCandidate(key, dest) {
				continue
			}
			recs = append(recs, migrateRec{key: key, e: e})
			if max > 0 && len(recs) >= max {
				return recs
			}
		}
	}
	return recs
}

// removeIfUnchanged deletes key only if its entry still equals the one
// observed at migration-selection time, so a concurrent SET that landed
// in between survives. The check and delete run under the key's txn
// stripe, which both closes the check-then-delete window against
// concurrent SETs and bumps the version for transactional readers.
func (c *Cache) removeIfUnchanged(key string, want entry) bool {
	sh := c.shards[c.shardFor(key)]
	removed := false
	c.txn.WithLock(key, func() {
		if cur, ok := sh.table.Get(key); ok && cur == want {
			removed = sh.table.Delete(key)
		}
	})
	return removed
}

// sendHandoff dials dest, pushes one HANDOFF frame (length-prefixed
// snapshot payload), and returns the count the peer reports applying.
// A non-nil trace is forwarded as the request's TRACE prefix so the
// receiving node's slow-op logs and flight records carry the same ID.
func sendHandoff(dest string, payload []byte, trace []byte) (int, error) {
	nc, err := net.DialTimeout("tcp", dest, migrateIOTimeout)
	if err != nil {
		return 0, err
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(migrateIOTimeout))

	w := bufio.NewWriterSize(nc, 64<<10)
	if len(trace) > 0 {
		w.WriteString("TRACE ")
		w.Write(trace)
		w.WriteByte(' ')
	}
	w.WriteString("HANDOFF ")
	w.WriteString(strconv.Itoa(len(payload)))
	w.WriteByte('\n')
	w.Write(payload)
	if err := w.Flush(); err != nil {
		return 0, err
	}
	line, err := bufio.NewReader(nc).ReadString('\n')
	if err != nil {
		return 0, err
	}
	line = strings.TrimRight(line, "\r\n")
	if rest, ok := strings.CutPrefix(line, "HANDOFF "); ok {
		return strconv.Atoi(rest)
	}
	return 0, fmt.Errorf("peer rejected handoff: %q", line)
}

// applyHandoff consumes the length-prefixed snapshot payload following a
// HANDOFF request line and merges it through the normal Set path. A
// payload that fails to arrive in full is a transport failure (the
// connection is closed by the caller); a payload that arrives but fails
// validation is answered with ERR and the connection stays usable — the
// stream is back in sync at the next line either way.
func (s *Server) applyHandoff(r *bufio.Reader, w *bufio.Writer, n uint64, sp *obs.Span) error {
	buf := make([]byte, n)
	t0 := sp.Begin()
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	sp.End(obs.StageRead, t0)
	t0 = sp.Begin()
	loaded, err := s.cache.LoadSnapshot(bytes.NewReader(buf))
	sp.End(obs.StageProbe, t0)
	if err != nil {
		s.cache.stats.handoffRejects.Add(1)
		writeErr(w, err)
		return nil
	}
	s.cache.stats.handoffs.Add(1)
	s.cache.stats.migratedIn.Add(uint64(loaded))
	writeHandoff(w, loaded)
	return nil
}
