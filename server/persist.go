package server

// Snapshot persistence for the daemon's cache: the keyspace is written to
// disk when a drain completes and restored at startup, so a planned
// restart (deploy, host reboot) comes back with a warm cache instead of a
// miss storm. The format mirrors the root package's Map snapshots
// (persist.go): fixed header, length-prefixed records, and a CRC64
// trailer so a truncated or bit-flipped file is rejected as
// ErrBadSnapshot rather than half-loaded.
//
// Layout (all integers little-endian):
//
//	u64 magic "cuckood1"   u64 version
//	repeated records: u32 keyLen, key, u32 valLen, val, i64 expireAt,
//	                  u64 ver          (ver present from version 2 on)
//	u32 end marker 0xFFFFFFFF
//	u64 record count
//	u64 CRC64-ECMA of everything above
//
// Version 2 (cuckoorepl) appends each entry's replication version word
// to the record and loads records last-writer-wins, which is what lets
// the HANDOFF verb double as replication bulk catch-up: replaying a
// snapshot over fresher data can never regress a key. Version 1
// streams are still read (records load with ver 0, which loses to any
// replicated write).
//
// Keys are bounded by the protocol (250 bytes) and values by the line
// limit, so a length word past maxSnapshotStr means corruption, not a
// big record. Entries already expired at save or load time are skipped:
// a snapshot carries no obligation to resurrect dead data.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
	"time"
)

const (
	cacheSnapMagic   = 0x6375636B6F6F6431 // "cuckood1"
	cacheSnapVersion = 2
	// cacheSnapVersionNoVer is the pre-replication format: identical but
	// for the per-record version word. Still accepted on load.
	cacheSnapVersionNoVer = 1
	cacheSnapEnd          = ^uint32(0)
	// maxSnapshotStr bounds one record string; generous over the protocol's
	// own limits so format evolution has headroom.
	maxSnapshotStr = 1 << 20
)

// ErrBadSnapshot is returned by LoadSnapshot when the stream is not a
// valid cache snapshot (bad magic/version, truncation, CRC mismatch).
var ErrBadSnapshot = errors.New("server: bad snapshot")

// snapEncoder streams records in the snapshot wire format: header on
// construction, one record per add, end marker + count + CRC trailer on
// finish. It backs both the drain-time full snapshot and the MIGRATE
// verb's bulk transfer (cluster.go), which ships a selected subset of
// keys to another node in exactly this format.
type snapEncoder struct {
	dst     io.Writer
	crc     hash.Hash64
	bw      *bufio.Writer
	count   uint64
	scratch [8]byte
}

func newSnapEncoder(w io.Writer) *snapEncoder {
	e := &snapEncoder{dst: w, crc: crc64.New(crc64.MakeTable(crc64.ECMA))}
	e.bw = bufio.NewWriterSize(io.MultiWriter(w, e.crc), 1<<16)
	e.putU64(cacheSnapMagic)
	e.putU64(cacheSnapVersion)
	return e
}

func (e *snapEncoder) putU32(v uint32) {
	binary.LittleEndian.PutUint32(e.scratch[:4], v)
	e.bw.Write(e.scratch[:4])
}

func (e *snapEncoder) putU64(v uint64) {
	binary.LittleEndian.PutUint64(e.scratch[:], v)
	e.bw.Write(e.scratch[:])
}

// add appends one record.
func (e *snapEncoder) add(key string, ent entry) {
	e.putU32(uint32(len(key)))
	e.bw.WriteString(key)
	e.putU32(uint32(len(ent.val)))
	e.bw.WriteString(ent.val)
	e.putU64(uint64(ent.expireAt))
	e.putU64(ent.ver)
	e.count++
}

// finish writes the end marker, record count, and CRC trailer.
func (e *snapEncoder) finish() error {
	e.putU32(cacheSnapEnd)
	e.putU64(e.count)
	if err := e.bw.Flush(); err != nil {
		return err
	}
	// The trailer checksums everything before it, so it bypasses crc.
	binary.LittleEndian.PutUint64(e.scratch[:], e.crc.Sum64())
	_, err := e.dst.Write(e.scratch[:])
	return err
}

// SaveSnapshot writes the cache's live entries to w. Concurrent writers
// are not excluded — the caller serializes (the daemon snapshots after
// the drain, when no handler is running).
func (c *Cache) SaveSnapshot(w io.Writer) error {
	enc := newSnapEncoder(w)
	now := time.Now().UnixNano()
	for _, sh := range c.shards {
		for key, e := range sh.table.All() {
			if e.expired(now) {
				continue
			}
			enc.add(key, e)
		}
	}
	return enc.finish()
}

// LoadSnapshot replaces nothing and merges everything: each record is
// stored through the normal Set path (eviction rules included), skipping
// entries whose TTL has already passed. The whole stream is validated —
// header, end marker, count, CRC — before the first record is applied,
// so a corrupt snapshot leaves the cache untouched.
func (c *Cache) LoadSnapshot(r io.Reader) (int, error) {
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	br := bufio.NewReaderSize(r, 1<<16)

	type record struct {
		key, val string
		expireAt int64
		ver      uint64
	}
	var recs []record

	magic, err := readSnapU64(br, crc)
	if err != nil || magic != cacheSnapMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	version, err := readSnapU64(br, crc)
	if err != nil || (version != cacheSnapVersion && version != cacheSnapVersionNoVer) {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, version)
	}
	for {
		klen, err := readSnapU32(br, crc)
		if err != nil {
			return 0, fmt.Errorf("%w: truncated record", ErrBadSnapshot)
		}
		if klen == cacheSnapEnd {
			break
		}
		key, err := readSnapStr(br, crc, klen)
		if err != nil {
			return 0, err
		}
		vlen, err := readSnapU32(br, crc)
		if err != nil {
			return 0, fmt.Errorf("%w: truncated record", ErrBadSnapshot)
		}
		val, err := readSnapStr(br, crc, vlen)
		if err != nil {
			return 0, err
		}
		exp, err := readSnapU64(br, crc)
		if err != nil {
			return 0, fmt.Errorf("%w: truncated record", ErrBadSnapshot)
		}
		var ver uint64
		if version >= cacheSnapVersion {
			if ver, err = readSnapU64(br, crc); err != nil {
				return 0, fmt.Errorf("%w: truncated record", ErrBadSnapshot)
			}
		}
		recs = append(recs, record{key: key, val: val, expireAt: int64(exp), ver: ver})
	}
	count, err := readSnapU64(br, crc)
	if err != nil || count != uint64(len(recs)) {
		return 0, fmt.Errorf("%w: record count mismatch", ErrBadSnapshot)
	}
	want := crc.Sum64()
	var trailer [8]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return 0, fmt.Errorf("%w: missing checksum", ErrBadSnapshot)
	}
	if binary.LittleEndian.Uint64(trailer[:]) != want {
		return 0, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}

	now := time.Now().UnixNano()
	loaded := 0
	for _, rec := range recs {
		e := entry{val: rec.val, expireAt: rec.expireAt, ver: rec.ver}
		if e.expired(now) {
			continue
		}
		// Version-preserving, last-writer-wins apply: a record older than
		// the copy already stored (a catch-up replaying history the mirror
		// stream has since overtaken) is dropped, and applied records keep
		// their origin version so replicas stay comparable.
		applied, err := c.applyReplicaSet(rec.key, e, nil)
		if err != nil {
			// A shard smaller than the snapshot's origin can fill up; the
			// remaining records are dropped silently — a cache restore is
			// best-effort by definition.
			continue
		}
		if applied {
			loaded++
		}
	}
	return loaded, nil
}

func readSnapU32(r io.Reader, crc hash.Hash64) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	crc.Write(b[:])
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readSnapU64(r io.Reader, crc hash.Hash64) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	crc.Write(b[:])
	return binary.LittleEndian.Uint64(b[:]), nil
}

func readSnapStr(r io.Reader, crc hash.Hash64, n uint32) (string, error) {
	if n > maxSnapshotStr {
		return "", fmt.Errorf("%w: implausible string length %d", ErrBadSnapshot, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: truncated string", ErrBadSnapshot)
	}
	crc.Write(buf)
	return string(buf), nil
}

// saveSnapshot atomically persists the cache to cfg.SnapshotPath: write to
// a temp file in the same directory, fsync, rename. A crash mid-save
// leaves the previous snapshot intact.
func (s *Server) saveSnapshot() error {
	start := time.Now()
	dir := filepath.Dir(s.cfg.SnapshotPath)
	tmp, err := os.CreateTemp(dir, ".cuckood-snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := s.cache.SaveSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), s.cfg.SnapshotPath); err != nil {
		return err
	}
	dur := time.Since(start)
	s.cache.stats.snapSaves.Add(1)
	s.cache.stats.snapSaveNs.Store(uint64(dur))
	s.log.Info("snapshot saved",
		"path", s.cfg.SnapshotPath,
		"entries", s.cache.Len(),
		"dur", dur)
	return nil
}

// restoreSnapshot loads cfg.SnapshotPath into the cache at startup. A
// missing file is a clean first boot; a corrupt file is logged and
// ignored (an empty cache is always a safe fallback), so a bad snapshot
// can never keep the daemon down.
func (s *Server) restoreSnapshot() error {
	start := time.Now()
	f, err := os.Open(s.cfg.SnapshotPath)
	if errors.Is(err, os.ErrNotExist) {
		s.log.Info("no snapshot to restore", "path", s.cfg.SnapshotPath)
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := s.cache.LoadSnapshot(f)
	if err != nil {
		if errors.Is(err, ErrBadSnapshot) {
			s.log.Warn("snapshot rejected; starting cold",
				"path", s.cfg.SnapshotPath, "err", err)
			return nil
		}
		return err
	}
	dur := time.Since(start)
	s.cache.stats.snapLoads.Add(1)
	s.cache.stats.snapLoadNs.Store(uint64(dur))
	s.log.Info("snapshot restored",
		"path", s.cfg.SnapshotPath,
		"entries", n,
		"dur", dur)
	return nil
}
