package server

// cuckoorepl, server side (docs/REPLICATION.md): every key's two-choice
// ring placement already names a natural second home — its alternate
// node. This file mirrors writes there asynchronously:
//
//   - the write path (cacheKV.Store / DeleteTraced) enqueues each
//     mutation, with its version word, onto a bounded per-peer log;
//   - one mirror worker per peer drains the log in batches and streams
//     REPLSET/REPLDEL lines over a persistent connection;
//   - when the log overflows or a send fails, the worker falls back to
//     bulk catch-up: the same snapshot-format HANDOFF transfer MIGRATE
//     uses, selecting every key the pair shares (version-preserving,
//     last-writer-wins on apply, so replaying history is always safe);
//   - inbound REPLSET/REPLDEL apply under the key's stripe with a
//     version comparison, so a delayed mirror can never clobber a newer
//     local write — and never re-enqueue, so mirrors cannot loop.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"cuckoohash/generic"
	"cuckoohash/internal/cluster"
	"cuckoohash/internal/obs"
	"cuckoohash/internal/replica"
)

const (
	// replLogCap bounds each peer's mirror log. At typical write rates a
	// worker drains far faster than this fills; sustained overflow means
	// the peer is down, and bulk catch-up repairs it on return.
	replLogCap = 8192
	// replBatchMax is how many log entries one pipelined send carries.
	replBatchMax = 128
	// replPollInterval is the worker's fallback wake-up: the enqueue path
	// signals the worker directly, so this only paces retries against an
	// unreachable peer and catches any lost wake-up.
	replPollInterval = 50 * time.Millisecond
	// replDialTimeout/replIOTimeout bound one mirror exchange; a stuck
	// peer costs the worker a timeout, never a wedge.
	replDialTimeout = 1 * time.Second
	replIOTimeout   = 5 * time.Second
)

// replPeer is one mirror target: its address, the bounded log of
// mutations owed to it, and the worker wake-up channel.
type replPeer struct {
	addr string
	log  *replica.Log
	wake chan struct{}
}

// replState is the node's replication configuration: the ring, this
// node's place in it, and one peer slot per other ring member
// (ring-indexed; the self slot stays nil).
type replState struct {
	ring    *cluster.Ring
	self    string
	selfIdx int
	peers   []*replPeer
}

// peerFor returns the mirror target for key: the other member of the
// key's two-choice candidate pair, or nil when this node is not one of
// the key's candidates (nothing to mirror — the key is mid-migration)
// or the ring has a single node.
func (r *replState) peerFor(key string) *replPeer {
	pi, ai := r.ring.Candidates(key)
	switch r.selfIdx {
	case pi:
		return r.peers[ai]
	case ai:
		return r.peers[pi]
	default:
		return nil
	}
}

// replEnqueueSet mirrors a stored entry to the key's alternate node.
// Called from cacheKV.Store with the key's stripe held: the log append
// spins (never parks) and the wake-up send is non-blocking.
func (c *Cache) replEnqueueSet(key string, e entry) {
	r := c.repl
	if r == nil {
		return
	}
	p := r.peerFor(key)
	if p == nil {
		return
	}
	p.log.Append(replica.Entry{
		Key:        key,
		Val:        e.val,
		ExpireAt:   e.expireAt,
		Ver:        e.ver,
		EnqueuedAt: time.Now().UnixNano(),
	})
	c.stats.replEnqueued.Add(1)
	select { //lint:allow cuckoovet:blockcheck wake-up is a non-blocking send (default arm): it never parks the goroutine
	case p.wake <- struct{}{}:
	default:
	}
}

// replEnqueueDel mirrors a client-visible delete as a versioned
// tombstone. Same calling contract as replEnqueueSet.
func (c *Cache) replEnqueueDel(key string, ver uint64) {
	r := c.repl
	if r == nil {
		return
	}
	p := r.peerFor(key)
	if p == nil {
		return
	}
	p.log.Append(replica.Entry{Key: key, Ver: ver, Del: true, EnqueuedAt: time.Now().UnixNano()})
	c.stats.replEnqueued.Add(1)
	select { //lint:allow cuckoovet:blockcheck wake-up is a non-blocking send (default arm): it never parks the goroutine
	case p.wake <- struct{}{}:
	default:
	}
}

// applyReplicaSet stores a replicated entry if and only if it is newer
// than the local copy (last-writer-wins on the version word). It never
// re-enqueues replication — that is what keeps a mirrored write from
// bouncing between the pair forever — and it ratchets the version clock
// so local writes issued afterwards order above everything applied.
// The bool reports whether the entry was stored (false = stale-dropped).
//
// Shared by the REPLSET verb, snapshot restore, and HANDOFF bulk loads:
// all three are "replica" writes in the sense that they carry an origin
// version that must be preserved, not reassigned.
func (c *Cache) applyReplicaSet(key string, e entry, sp *obs.Span) (bool, error) {
	c.observeVersion(e.ver)
	si := c.shardFor(key)
	sh := c.shards[si]
	for tries := 0; ; tries++ {
		applied, full := false, false
		c.txn.WithLockSpan(key, sp, func() {
			if cur, ok := sh.table.Get(key); ok {
				if cur.ver >= e.ver {
					return // local copy is newer (or this is a redelivery)
				}
				applied = sh.table.Upsert(key, e) == nil
				return
			}
			switch err := sh.table.Insert(key, e); err {
			case nil:
				sh.pushRing(key)
				applied = true
			case generic.ErrExists:
				applied = sh.table.Upsert(key, e) == nil
			default:
				full = true
			}
		})
		if !full {
			return applied, nil
		}
		if tries >= maxEvictTries {
			return false, ErrServerFull
		}
		// Same escalating evict-outside-the-stripe loop as setEntry.
		t0 := sp.Begin()
		for n := 0; n <= tries; n++ {
			if !c.evictOne(si) {
				sp.End(obs.StageEvict, t0)
				return false, ErrServerFull
			}
		}
		sp.End(obs.StageEvict, t0)
	}
}

// applyReplicaDel applies a versioned tombstone: the local copy is
// removed unless it is strictly newer than the delete. Absent keys
// report true (an idempotent delete already took effect).
func (c *Cache) applyReplicaDel(key string, ver uint64, sp *obs.Span) bool {
	c.observeVersion(ver)
	sh := c.shards[c.shardFor(key)]
	applied := true
	c.txn.WithLockSpan(key, sp, func() {
		if cur, ok := sh.table.Get(key); ok {
			if cur.ver > ver {
				applied = false
				return
			}
			sh.table.Delete(key)
		}
	})
	return applied
}

// EnableReplication turns on two-choice mirroring: nodes and seed must
// be the identical ring every participant (servers and clients) is
// configured with, and self must be this node's own address in it (""
// derives it from the bound listener, so tests using ":0" addresses can
// pass the resolved address list). Call after Listen and before Serve;
// the mirror workers stop with the server's sweeper on Shutdown.
func (s *Server) EnableReplication(nodes []string, seed uint64, self string) error {
	ring, err := cluster.New(nodes, seed)
	if err != nil {
		return err
	}
	if self == "" {
		if s.ln == nil {
			return errors.New("server: EnableReplication needs a bound listener or an explicit self address")
		}
		self = s.ln.Addr().String()
	}
	idx := ring.Index(self)
	if idx < 0 {
		return fmt.Errorf("server: self address %q is not in the replication ring %q", self, ring.CSV())
	}
	r := &replState{
		ring:    ring,
		self:    self,
		selfIdx: idx,
		peers:   make([]*replPeer, ring.Len()),
	}
	for i, addr := range ring.Nodes() {
		if i == idx {
			continue
		}
		p := &replPeer{addr: addr, log: replica.NewLog(replLogCap), wake: make(chan struct{}, 1)}
		r.peers[i] = p
		go s.mirrorWorker(p)
	}
	s.cache.repl = r
	s.log.Info("replication enabled", "self", self, "ring", ring.CSV(), "seed", seed)
	return nil
}

// ReplQueueDepth returns the total number of mutations buffered across
// all peer mirror logs — 0 means every acknowledged write has been
// handed to the transport. Tests use it to wait for mirror quiesce.
func (s *Server) ReplQueueDepth() int {
	r := s.cache.repl
	if r == nil {
		return 0
	}
	depth := 0
	for _, p := range r.peers {
		if p != nil {
			depth += p.log.Len()
		}
	}
	return depth
}

// mirrorWorker is the drain loop for one peer: wait for work, settle
// any owed bulk catch-up, then stream batches of REPLSET/REPLDEL lines
// over a persistent connection. Failures are cheap by design — drained
// entries are abandoned and the overflow flag latched, so the next pass
// repairs the peer in bulk rather than replaying piecemeal.
func (s *Server) mirrorWorker(p *replPeer) {
	st := s.cache.stats
	var conn *replConn
	defer func() {
		if conn != nil {
			conn.close()
		}
	}()
	batch := make([]replica.Entry, 0, replBatchMax)
	for {
		select {
		case <-s.sweepStop:
			return
		case <-p.wake:
		case <-time.After(replPollInterval):
		}
		for {
			// Owed catch-up settles first so the FIFO entries sent below
			// are never older than the repair snapshot.
			if p.log.TakeOverflow() {
				if err := s.replCatchup(p); err != nil {
					st.replSendFails.Add(1)
					p.log.ForceCatchup()
					break
				}
			}
			batch = p.log.Drain(batch, replBatchMax)
			if len(batch) == 0 {
				st.replLagNs.Store(0)
				break
			}
			if oldest := batch[0].EnqueuedAt; oldest > 0 {
				st.replLagNs.Store(uint64(max64(0, time.Now().UnixNano()-oldest)))
			}
			if conn == nil {
				var err error
				if conn, err = dialRepl(p.addr); err != nil {
					// The drained entries are lost to the stream; latch a
					// bulk repair and retry on the next poll tick.
					st.replSendFails.Add(1)
					p.log.ForceCatchup()
					break
				}
			}
			if err := conn.sendBatch(batch); err != nil {
				conn.close()
				conn = nil
				st.replSendFails.Add(1)
				p.log.ForceCatchup()
				break
			}
			st.replMirrored.Add(uint64(len(batch)))
			st.replBatches.Add(1)
		}
	}
}

// replCatchup bulk-repairs a peer: select every live key whose
// candidate pair is {self, peer} (the "shed" predicate MIGRATE already
// uses — key at home on self, peer its other choice) and push one
// snapshot-format HANDOFF. The peer applies it last-writer-wins, so a
// catch-up racing live mirror traffic can only fill gaps, never regress.
func (s *Server) replCatchup(p *replPeer) error {
	r := s.cache.repl
	recs := s.cache.selectForMigrate(r.ring, "shed", p.addr, r.self, 0)
	if len(recs) == 0 {
		s.cache.stats.replCatchups.Add(1)
		return nil
	}
	var buf bytes.Buffer
	enc := newSnapEncoder(&buf)
	for _, rc := range recs {
		enc.add(rc.key, rc.e)
	}
	if err := enc.finish(); err != nil {
		return err
	}
	loaded, err := sendHandoff(p.addr, buf.Bytes(), nil)
	if err != nil {
		return err
	}
	s.cache.stats.replCatchups.Add(1)
	s.log.Info("replication catch-up",
		"peer", p.addr, "selected", len(recs), "applied", loaded)
	return nil
}

// replConn is the mirror worker's persistent connection to its peer.
type replConn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func dialRepl(addr string) (*replConn, error) {
	nc, err := net.DialTimeout("tcp", addr, replDialTimeout)
	if err != nil {
		return nil, err
	}
	return &replConn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 16<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}, nil
}

func (rc *replConn) close() { rc.nc.Close() }

// sendBatch pipelines one REPLSET/REPLDEL line per entry, flushes, and
// reads one reply line per entry. "OK" and "STALE" are both success
// (STALE means the peer already had something newer); an ERR line or
// transport failure fails the batch.
func (rc *replConn) sendBatch(batch []replica.Entry) error {
	rc.nc.SetDeadline(time.Now().Add(replIOTimeout))
	var num [20]byte
	for i := range batch {
		e := &batch[i]
		if e.Del {
			rc.bw.WriteString("REPLDEL ")
			rc.bw.WriteString(e.Key)
			rc.bw.WriteByte(' ')
			rc.bw.Write(strconv.AppendUint(num[:0], e.Ver, 10))
		} else {
			rc.bw.WriteString("REPLSET ")
			rc.bw.WriteString(e.Key)
			rc.bw.WriteByte(' ')
			rc.bw.Write(strconv.AppendUint(num[:0], e.Ver, 10))
			rc.bw.WriteByte(' ')
			rc.bw.Write(strconv.AppendInt(num[:0], e.ExpireAt, 10))
			rc.bw.WriteByte(' ')
			rc.bw.WriteString(e.Val)
		}
		rc.bw.WriteByte('\n')
	}
	if err := rc.bw.Flush(); err != nil {
		return err
	}
	for range batch {
		line, err := rc.br.ReadString('\n')
		if err != nil {
			return err
		}
		if len(line) >= 3 && line[0] == 'E' && line[1] == 'R' && line[2] == 'R' {
			return fmt.Errorf("peer rejected mirror entry: %q", line)
		}
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
