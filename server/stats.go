package server

import (
	"fmt"
	"sync/atomic"

	"cuckoohash/generic"
	"cuckoohash/internal/metrics"
	"cuckoohash/internal/obs"
	"cuckoohash/internal/spinlock"
)

// latencySampleMask samples one request latency out of every 16 per
// connection: enough resolution for STATS quantiles without putting two
// clock reads on every request's fast path.
const latencySampleMask = 0xf

// latencyShards sizes the sharded latency histogram. Each connection
// records into its own shard (assigned round-robin at accept time), so
// sampled requests on different connections never touch a shared cache
// line — previously every 16th request across *all* connections serialized
// on one global mutex.
const latencyShards = 64

// stats aggregates the daemon's counters. Operation counters are kept
// per shard (metrics.OpCounter gives each shard a padded slot), so two
// connections hammering different shards never bounce a statistics cache
// line between cores — the service-layer form of the paper's principle
// P1, "never share a counter between threads".
type stats struct {
	gets      *metrics.OpCounter
	hits      *metrics.OpCounter
	misses    *metrics.OpCounter
	sets      *metrics.OpCounter
	dels      *metrics.OpCounter
	incrs     *metrics.OpCounter // INCR/DECR/ADD/MAXUPDATE applied
	cass      *metrics.OpCounter // CAS attempts (conflicts counted by txn)
	expired   *metrics.OpCounter
	evictions *metrics.OpCounter

	connsActive atomic.Int64
	connsTotal  atomic.Uint64

	slowOps atomic.Uint64             // requests over the slow-op threshold
	sweeps  atomic.Uint64             // completed TTL sweep passes
	lat     *metrics.ShardedHistogram // sampled request latencies (ns)

	// cuckootrace state (docs/OBSERVABILITY.md): per-{verb,stage} latency
	// attribution from sampled spans, the hot-key top-K sketches (one per
	// connection-shard group so the sampled path stays uncontended), and
	// exemplar trace IDs from recent slow requests.
	stages     *obs.StageTable
	hot        [hotSketches]*obs.TopK
	slowTraces *obs.SlowTraces

	// Robustness counters (docs/ROBUSTNESS.md): how often each overload
	// and fault-recovery mechanism engaged.
	acceptRetries atomic.Uint64 // temporary accept errors retried with backoff
	connsShed     atomic.Uint64 // connections refused at accept (MaxConns)
	busyRejected  atomic.Uint64 // requests fast-failed with ERR busy (MaxInflight)
	idleClosed    atomic.Uint64 // connections closed by the idle timeout
	ioTimeouts    atomic.Uint64 // connections closed by a write deadline
	snapSaves     atomic.Uint64 // snapshots written on drain
	snapLoads     atomic.Uint64 // snapshots restored at startup
	snapSaveNs    atomic.Uint64 // duration of the last snapshot save
	snapLoadNs    atomic.Uint64 // duration of the last snapshot load

	// Cluster counters (docs/CLUSTER.md): two-choice migration traffic
	// through the MIGRATE/HANDOFF verbs.
	migratedIn     atomic.Uint64 // keys applied from inbound handoffs
	migratedOut    atomic.Uint64 // keys moved to a peer and removed here
	handoffs       atomic.Uint64 // inbound bulk transfers applied
	handoffRejects atomic.Uint64 // inbound transfers rejected (bad payload)
	migrateFails   atomic.Uint64 // outbound transfers that failed

	// Replication counters (docs/REPLICATION.md): the two-choice mirror
	// stream, outbound (enqueue → batch send / catch-up) and inbound
	// (REPLSET/REPLDEL application).
	replEnqueued  atomic.Uint64 // mutations enqueued onto peer mirror logs
	replMirrored  atomic.Uint64 // entries acknowledged by a peer
	replBatches   atomic.Uint64 // pipelined mirror batches sent
	replSendFails atomic.Uint64 // mirror sends/dials that failed
	replCatchups  atomic.Uint64 // bulk catch-up handoffs completed
	replApplied   atomic.Uint64 // inbound replica writes applied
	replStale     atomic.Uint64 // inbound replica writes dropped as stale
	replLagNs     atomic.Uint64 // age of the oldest queued mutation at last drain

	// Lease counters: the miss-lease anti-herd protocol (LEASE/SETL).
	leaseGrants      atomic.Uint64 // fill tokens granted
	leaseWaits       atomic.Uint64 // clients told to wait for a fill in flight
	leaseStaleServes atomic.Uint64 // expired copies served while a fill runs
	leaseFills       atomic.Uint64 // SETL fills accepted
	leaseRejects     atomic.Uint64 // SETL fills rejected (token stale/invalid)
}

// hotSketches is how many independent top-K sketches traffic spreads
// across (indexed by connection shard); HOTKEYS folds them on read.
// Power of two so the index is a mask.
const hotSketches = 8

// hotSketchK is each sketch's tracked-key budget. 48 per sketch leaves
// plenty of slack over the 10-key answer HOTKEYS defaults to, which is
// what keeps space-saving's error bound far below the head of a zipf
// distribution.
const hotSketchK = 48

// stageVerbs are the verb labels of the stage-latency table, indexed by
// verbClassOf. "other" absorbs QUIT/MULTI bookkeeping and bad lines.
var stageVerbs = []string{
	"GET", "SET", "DEL", "TTL", "STATS", "CLUSTER", "MIGRATE",
	"HANDOFF", "INCR", "MAXUPDATE", "CAS", "EXEC", "HOTKEYS",
	"LEASE", "REPL", "other",
}

// verbClassOf maps an opCode to its stageVerbs index. SETEX folds into
// SET, DECR/ADD into INCR: same code path, same stage profile. The
// versioned variants fold into their plain classes (GETV→GET, SETV→SET);
// the lease protocol (LEASE + its SETL fill) and inbound replication
// (REPLSET/REPLDEL) each get their own class — their stage profiles are
// what the new repl/lease span stages exist to expose.
func verbClassOf(op opCode) int {
	switch op {
	case opGet, opGetV:
		return 0
	case opSet, opSetEx, opSetV:
		return 1
	case opDel:
		return 2
	case opTTL:
		return 3
	case opStats:
		return 4
	case opCluster:
		return 5
	case opMigrate:
		return 6
	case opHandoff:
		return 7
	case opIncr, opDecr, opAdd:
		return 8
	case opMaxUpdate:
		return 9
	case opCAS:
		return 10
	case opExec:
		return 11
	case opHotKeys:
		return 12
	case opLease, opSetLease:
		return 13
	case opReplSet, opReplDel:
		return 14
	}
	return len(stageVerbs) - 1
}

func newStats(shards int) *stats {
	st := &stats{
		gets:       metrics.NewOpCounter(shards),
		hits:       metrics.NewOpCounter(shards),
		misses:     metrics.NewOpCounter(shards),
		sets:       metrics.NewOpCounter(shards),
		dels:       metrics.NewOpCounter(shards),
		incrs:      metrics.NewOpCounter(shards),
		cass:       metrics.NewOpCounter(shards),
		expired:    metrics.NewOpCounter(shards),
		evictions:  metrics.NewOpCounter(shards),
		lat:        metrics.NewShardedHistogram(latencyShards),
		stages:     obs.NewStageTable(stageVerbs, 4),
		slowTraces: &obs.SlowTraces{},
	}
	for i := range st.hot {
		st.hot[i] = obs.NewTopK(hotSketchK)
	}
	return st
}

// touchHot counts one sampled request against the hot-key sketches.
func (st *stats) touchHot(shard uint64, key []byte) {
	st.hot[shard&(hotSketches-1)].Touch(key)
}

// HotKeys folds the per-shard sketches and returns the top n.
func (st *stats) HotKeys(n int) []obs.TopKItem {
	items := obs.MergeTopK(st.hot[:])
	if len(items) > n {
		items = items[:n]
	}
	return items
}

// recordLatency merges one sampled request latency into the connection's
// histogram shard, lock-free.
func (st *stats) recordLatency(shard uint64, ns uint64) {
	st.lat.Record(shard, ns)
}

// Hits returns the cumulative GET hit count.
func (st *stats) Hits() uint64 { return st.hits.Total() }

// Misses returns the cumulative GET miss count.
func (st *stats) Misses() uint64 { return st.misses.Total() }

// Evictions returns the number of entries evicted to make room.
func (st *stats) Evictions() uint64 { return st.evictions.Total() }

// Expired returns the number of entries removed because their TTL passed.
func (st *stats) Expired() uint64 { return st.expired.Total() }

// Stat is one name/value line of the STATS response.
type Stat struct {
	Name  string
	Value string
}

// tableTotals aggregates the per-shard cuckoo tables' internal probe
// counters and stripe-lock statistics. MaxPathLen takes the max across
// shards; everything else sums.
func (c *Cache) tableTotals() (generic.Stats, spinlock.StripeStats) {
	var tab generic.Stats
	var lock spinlock.StripeStats
	for _, s := range c.shards {
		ts := s.table.Stats()
		tab.Searches += ts.Searches
		tab.Displacements += ts.Displacements
		tab.PathRestarts += ts.PathRestarts
		tab.Grows += ts.Grows
		tab.MigratedBuckets += ts.MigratedBuckets
		tab.MigrationBacklog += ts.MigrationBacklog
		if ts.MaxPathLen > tab.MaxPathLen {
			tab.MaxPathLen = ts.MaxPathLen
		}
		for i, n := range ts.PathLenHist {
			tab.PathLenHist[i] += n
		}
		ls := s.table.LockStats()
		lock.Acquisitions += ls.Acquisitions
		lock.Contended += ls.Contended
		lock.Yields += ls.Yields
	}
	return tab, lock
}

// replLogTotals aggregates the peer mirror logs: buffered depth and
// entries dropped to overflow. Both are zero when replication is off.
func (c *Cache) replLogTotals() (depth int, dropped uint64) {
	r := c.repl
	if r == nil {
		return 0, 0
	}
	for _, p := range r.peers {
		if p == nil {
			continue
		}
		s := p.log.Stats()
		depth += s.Depth
		dropped += s.Dropped
	}
	return depth, dropped
}

// growingShards counts shards with an incremental resize in flight.
func (c *Cache) growingShards() int {
	n := 0
	for _, s := range c.shards {
		if s.table.Growing() {
			n++
		}
	}
	return n
}

// Snapshot renders every counter, the hit ratio, the sampled latency
// quantiles, and the cuckoo tables' internal probe counters as STATS
// lines. It is called off the hot path, so the lazy aggregation of the
// per-shard counters happens here, not per request.
func (c *Cache) Snapshot(st *stats) []Stat {
	gets, hits, misses := st.gets.Total(), st.hits.Total(), st.misses.Total()
	ratio := 0.0
	if gets > 0 {
		ratio = float64(hits) / float64(gets)
	}
	lat := st.lat.Snapshot() // lock-free merge of the per-connection shards
	tab, lock := c.tableTotals()
	tx := c.txn.StatsSnapshot()
	replDepth, replDropped := c.replLogTotals()

	out := []Stat{
		{"entries", fmt.Sprint(c.Len())},
		{"capacity", fmt.Sprint(c.Cap())},
		{"shards", fmt.Sprint(len(c.shards))},
		{"gets", fmt.Sprint(gets)},
		{"hits", fmt.Sprint(hits)},
		{"misses", fmt.Sprint(misses)},
		{"hit_ratio", fmt.Sprintf("%.4f", ratio)},
		{"sets", fmt.Sprint(st.sets.Total())},
		{"dels", fmt.Sprint(st.dels.Total())},
		{"incrs", fmt.Sprint(st.incrs.Total())},
		{"cas_ops", fmt.Sprint(st.cass.Total())},
		{"expired", fmt.Sprint(st.expired.Total())},
		{"evictions", fmt.Sprint(st.evictions.Total())},
		{"conns_active", fmt.Sprint(st.connsActive.Load())},
		{"conns_total", fmt.Sprint(st.connsTotal.Load())},
		{"lat_samples", fmt.Sprint(lat.Count())},
		{"lat_mean_ns", fmt.Sprintf("%.0f", lat.Mean())},
		{"lat_p50_ns", fmt.Sprint(lat.Quantile(0.50))},
		{"lat_p99_ns", fmt.Sprint(lat.Quantile(0.99))},
		{"lat_p999_ns", fmt.Sprint(lat.Quantile(0.999))},
		{"slow_ops", fmt.Sprint(st.slowOps.Load())},
		{"hot_keys_tracked", fmt.Sprint(len(st.HotKeys(hotSketches * hotSketchK)))},
		{"sweeps", fmt.Sprint(st.sweeps.Load())},
		{"accept_retries", fmt.Sprint(st.acceptRetries.Load())},
		{"conns_shed", fmt.Sprint(st.connsShed.Load())},
		{"busy_rejected", fmt.Sprint(st.busyRejected.Load())},
		{"idle_closed", fmt.Sprint(st.idleClosed.Load())},
		{"io_timeouts", fmt.Sprint(st.ioTimeouts.Load())},
		{"snapshot_saves", fmt.Sprint(st.snapSaves.Load())},
		{"snapshot_loads", fmt.Sprint(st.snapLoads.Load())},
		{"snapshot_last_save_ns", fmt.Sprint(st.snapSaveNs.Load())},
		{"snapshot_last_load_ns", fmt.Sprint(st.snapLoadNs.Load())},
		{"cluster_migrated_in", fmt.Sprint(st.migratedIn.Load())},
		{"cluster_migrated_out", fmt.Sprint(st.migratedOut.Load())},
		{"cluster_handoffs", fmt.Sprint(st.handoffs.Load())},
		{"cluster_handoff_rejects", fmt.Sprint(st.handoffRejects.Load())},
		{"cluster_migrate_failures", fmt.Sprint(st.migrateFails.Load())},
		{"repl_enqueued", fmt.Sprint(st.replEnqueued.Load())},
		{"repl_mirrored", fmt.Sprint(st.replMirrored.Load())},
		{"repl_batches", fmt.Sprint(st.replBatches.Load())},
		{"repl_send_failures", fmt.Sprint(st.replSendFails.Load())},
		{"repl_catchups", fmt.Sprint(st.replCatchups.Load())},
		{"repl_applied", fmt.Sprint(st.replApplied.Load())},
		{"repl_stale_rejected", fmt.Sprint(st.replStale.Load())},
		{"repl_dropped", fmt.Sprint(replDropped)},
		{"repl_queue_depth", fmt.Sprint(replDepth)},
		{"repl_lag_ns", fmt.Sprint(st.replLagNs.Load())},
		{"lease_grants", fmt.Sprint(st.leaseGrants.Load())},
		{"lease_waits", fmt.Sprint(st.leaseWaits.Load())},
		{"lease_stale_serves", fmt.Sprint(st.leaseStaleServes.Load())},
		{"lease_fills", fmt.Sprint(st.leaseFills.Load())},
		{"lease_rejects", fmt.Sprint(st.leaseRejects.Load())},
		{"txn_commits", fmt.Sprint(tx.Commits)},
		{"txn_aborts", fmt.Sprint(tx.Aborts)},
		{"txn_epoch_aborts", fmt.Sprint(tx.EpochAborts)},
		{"txn_fallbacks", fmt.Sprint(tx.Fallbacks)},
		{"txn_cas_conflicts", fmt.Sprint(tx.CASConflicts)},
		{"txn_split_ops", fmt.Sprint(tx.SplitOps)},
		{"txn_split_reconciles", fmt.Sprint(tx.Reconciles)},
		{"txn_split_promotions", fmt.Sprint(tx.Promotions)},
		{"txn_split_demotions", fmt.Sprint(tx.Demotions)},
		{"txn_hot_keys", fmt.Sprint(tx.HotKeys)},
		{"table_searches", fmt.Sprint(tab.Searches)},
		{"table_displacements", fmt.Sprint(tab.Displacements)},
		{"table_path_restarts", fmt.Sprint(tab.PathRestarts)},
		{"table_max_path_len", fmt.Sprint(tab.MaxPathLen)},
		{"table_grows", fmt.Sprint(tab.Grows)},
		{"grow_migrated_buckets", fmt.Sprint(tab.MigratedBuckets)},
		{"grow_backlog_buckets", fmt.Sprint(tab.MigrationBacklog)},
		{"grow_in_progress", fmt.Sprint(c.growingShards())},
		{"lock_acquisitions", fmt.Sprint(lock.Acquisitions)},
		{"lock_contended", fmt.Sprint(lock.Contended)},
		{"lock_yields", fmt.Sprint(lock.Yields)},
	}
	for i, s := range c.shards {
		out = append(out, Stat{
			fmt.Sprintf("shard%d_entries", i),
			fmt.Sprint(s.table.Len()),
		})
	}
	return out
}
