package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cuckoohash/internal/metrics"
)

// latencySampleMask samples one request latency out of every 16 per
// connection: enough resolution for STATS quantiles without putting two
// clock reads and a mutex on every request's fast path.
const latencySampleMask = 0xf

// stats aggregates the daemon's counters. Operation counters are kept
// per shard (metrics.OpCounter gives each shard a padded slot), so two
// connections hammering different shards never bounce a statistics cache
// line between cores — the service-layer form of the paper's principle
// P1, "never share a counter between threads".
type stats struct {
	gets      *metrics.OpCounter
	hits      *metrics.OpCounter
	misses    *metrics.OpCounter
	sets      *metrics.OpCounter
	dels      *metrics.OpCounter
	expired   *metrics.OpCounter
	evictions *metrics.OpCounter

	connsActive atomic.Int64
	connsTotal  atomic.Uint64

	latMu sync.Mutex
	lat   metrics.Histogram // sampled request latencies (ns)
}

func newStats(shards int) *stats {
	return &stats{
		gets:      metrics.NewOpCounter(shards),
		hits:      metrics.NewOpCounter(shards),
		misses:    metrics.NewOpCounter(shards),
		sets:      metrics.NewOpCounter(shards),
		dels:      metrics.NewOpCounter(shards),
		expired:   metrics.NewOpCounter(shards),
		evictions: metrics.NewOpCounter(shards),
	}
}

// recordLatency merges one sampled request latency.
func (st *stats) recordLatency(ns uint64) {
	st.latMu.Lock()
	st.lat.Record(ns)
	st.latMu.Unlock()
}

// Hits returns the cumulative GET hit count.
func (st *stats) Hits() uint64 { return st.hits.Total() }

// Misses returns the cumulative GET miss count.
func (st *stats) Misses() uint64 { return st.misses.Total() }

// Evictions returns the number of entries evicted to make room.
func (st *stats) Evictions() uint64 { return st.evictions.Total() }

// Expired returns the number of entries removed because their TTL passed.
func (st *stats) Expired() uint64 { return st.expired.Total() }

// Stat is one name/value line of the STATS response.
type Stat struct {
	Name  string
	Value string
}

// Snapshot renders every counter, the hit ratio, and the sampled latency
// quantiles as STATS lines. It is called off the hot path, so the lazy
// aggregation of the per-shard counters happens here, not per request.
func (c *Cache) Snapshot(st *stats) []Stat {
	gets, hits, misses := st.gets.Total(), st.hits.Total(), st.misses.Total()
	ratio := 0.0
	if gets > 0 {
		ratio = float64(hits) / float64(gets)
	}
	st.latMu.Lock()
	lat := st.lat // copy: Histogram is a value type
	st.latMu.Unlock()

	out := []Stat{
		{"entries", fmt.Sprint(c.Len())},
		{"capacity", fmt.Sprint(c.Cap())},
		{"shards", fmt.Sprint(len(c.shards))},
		{"gets", fmt.Sprint(gets)},
		{"hits", fmt.Sprint(hits)},
		{"misses", fmt.Sprint(misses)},
		{"hit_ratio", fmt.Sprintf("%.4f", ratio)},
		{"sets", fmt.Sprint(st.sets.Total())},
		{"dels", fmt.Sprint(st.dels.Total())},
		{"expired", fmt.Sprint(st.expired.Total())},
		{"evictions", fmt.Sprint(st.evictions.Total())},
		{"conns_active", fmt.Sprint(st.connsActive.Load())},
		{"conns_total", fmt.Sprint(st.connsTotal.Load())},
		{"lat_samples", fmt.Sprint(lat.Count())},
		{"lat_mean_ns", fmt.Sprintf("%.0f", lat.Mean())},
		{"lat_p50_ns", fmt.Sprint(lat.Quantile(0.50))},
		{"lat_p99_ns", fmt.Sprint(lat.Quantile(0.99))},
		{"lat_p999_ns", fmt.Sprint(lat.Quantile(0.999))},
	}
	for i, s := range c.shards {
		out = append(out, Stat{
			fmt.Sprintf("shard%d_entries", i),
			fmt.Sprint(s.table.Len()),
		})
	}
	return out
}
