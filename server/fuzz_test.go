package server

import (
	"bytes"
	"testing"
	"time"
)

// FuzzParseCommand throws arbitrary request lines at the text-protocol
// parser and checks its invariants rather than exact outputs:
//
//   - it never panics (the implicit property of any fuzz target);
//   - a parse error never coexists with a usable request, and vice versa;
//   - whatever it accepts respects the protocol's own bounds (key length,
//     TTL positivity, HANDOFF payload bounds, MIGRATE operand count);
//   - key/val always alias the input line, never copies with different
//     content (conn.go depends on aliasing for its zero-copy fast path).
//
// Run via `make fuzz` or `go test -fuzz FuzzParseCommand ./server/`.
func FuzzParseCommand(f *testing.F) {
	seeds := []string{
		"GET k",
		"SET k v",
		"SET k value with spaces",
		"SETEX k 1500 v",
		"DEL k",
		"TTL k",
		"STATS",
		"QUIT",
		"CLUSTER",
		"HANDOFF 1024",
		"HANDOFF 67108865",
		"MIGRATE shed 127.0.0.1:2 127.0.0.1:1 42 0 127.0.0.1:1,127.0.0.1:2",
		"MIGRATE home b a 18446744073709551615 4294967295 a,b",
		"get lower",
		"SET " + string(bytes.Repeat([]byte("k"), 251)) + " v",
		"",
		" ",
		"\x00\xff",
		"SET k\x00 v",
		// Transaction verbs (docs/TRANSACTIONS.md).
		"INCR k",
		"INCR k 5",
		"DECR k 3",
		"DECR k -9223372036854775808", // negating MinInt64 overflows
		"ADD k -42",
		"ADD k",                       // operand required
		"INCR k 9223372036854775807",  // MaxInt64
		"INCR k 9223372036854775808",  // MaxInt64+1: must be rejected
		"INCR k -9223372036854775809", // MinInt64-1: must be rejected
		"INCR k 0x10",
		"INCR k 1 2",
		"MAXUPDATE k 100",
		"MAXUPDATE k +7",
		"CAS k old new",
		"CAS k old new value with spaces",
		"CAS k old", // new value required
		"CAS k",     // truncated
		"MULTI",
		"MULTI extra", // no operands allowed
		"EXEC",
		"EXEC 3",
		"DISCARD",
		// Tracing verbs (docs/OBSERVABILITY.md).
		"TRACE abc123 GET k",
		"TRACE t SET k v",
		"TRACE",                 // id and command both missing
		"TRACE id-only",         // command missing
		"TRACE x TRACE y GET k", // prefix is legal exactly once
		"TRACE " + string(bytes.Repeat([]byte("i"), 64)) + " GET k",
		"TRACE " + string(bytes.Repeat([]byte("i"), 65)) + " GET k", // id too long
		"HOTKEYS",
		"HOTKEYS 5",
		"HOTKEYS 0",
		"HOTKEYS 128",
		"HOTKEYS 129",
		"HOTKEYS 5 extra",
		// Replication & lease verbs (docs/REPLICATION.md).
		"GETV k",
		"GETV",
		"SETV k 0 v",
		"SETV k 1500 value with spaces",
		"SETV k -1 v",         // negative TTL must be rejected
		"SETV k 4294967296 v", // TTL overflows uint32
		"LEASE k",
		"LEASE",
		"SETL k deadbeef 0 v",
		"SETL k DEADBEEF 1500 v",
		"SETL k 0 0 v",                 // token 0 is never granted
		"SETL k ffffffffffffffff 0 v",  // max 16-hex-digit token
		"SETL k 1ffffffffffffffff 0 v", // 17 digits: too long
		"SETL k nothex 0 v",
		"SETL k deadbeef v", // truncated: ttl missing
		"SETL k",            // truncated: everything missing
		"REPLSET k 5 0 v",
		"REPLSET k 18446744073709551615 0 v", // MaxUint64 version word
		"REPLSET k 18446744073709551616 0 v", // MaxUint64+1 must be rejected, not aliased
		"REPLSET k 0 0 v",                    // version 0 reserved for "absent"
		"REPLSET k 5 -1 v",                   // negative absolute expiry
		"REPLSET k 5 9223372036854775807 value with spaces",
		"REPLSET " + string(bytes.Repeat([]byte("k"), 251)) + " 5 0 v",
		"REPLDEL k 7",
		"REPLDEL k 0",
		"REPLDEL k 7 extra", // batch framing: exactly two operands
		"REPLDEL k",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		if bytes.ContainsAny(line, "\r\n") {
			// readLine strips line terminators before parseRequest ever
			// sees the bytes; embedded ones cannot occur.
			return
		}
		req, err := parseRequest(line)
		if err != nil {
			if req.op != 0 || req.key != nil || req.val != nil || req.old != nil ||
				req.delta != 0 || req.mig != nil || req.payload != 0 || req.trace != nil {
				t.Fatalf("error %v returned alongside non-zero request %+v", err, req)
			}
			return
		}
		switch req.op {
		case opGet, opDel, opTTL:
			if len(req.key) == 0 || len(req.key) > maxKeyLen {
				t.Fatalf("%s accepted key of length %d", req.op, len(req.key))
			}
		case opSet:
			if len(req.key) == 0 || len(req.key) > maxKeyLen || req.val == nil {
				t.Fatalf("SET accepted bad operands %+v", req)
			}
		case opSetEx:
			if len(req.key) == 0 || len(req.key) > maxKeyLen || req.val == nil {
				t.Fatalf("SETEX accepted bad operands %+v", req)
			}
			if req.ttl < time.Millisecond {
				t.Fatalf("SETEX accepted non-positive ttl %v", req.ttl)
			}
		case opStats, opQuit, opCluster, opMulti, opExec, opDiscard:
			// No operands to validate.
		case opHotKeys:
			if req.delta < 1 || req.delta > hotKeysMax {
				t.Fatalf("HOTKEYS accepted count %d", req.delta)
			}
			if req.key != nil || req.val != nil || req.old != nil {
				t.Fatalf("HOTKEYS parsed with key/value operands %+v", req)
			}
		case opIncr, opDecr, opAdd, opMaxUpdate:
			if len(req.key) == 0 || len(req.key) > maxKeyLen {
				t.Fatalf("%s accepted key of length %d", req.op, len(req.key))
			}
			if req.old != nil || req.val != nil {
				t.Fatalf("counter verb parsed with CAS operands %+v", req)
			}
			// Any int64 delta is legal (DECR MinInt64 wraps back to itself);
			// the parse itself succeeding is the invariant.
		case opCAS:
			if len(req.key) == 0 || len(req.key) > maxKeyLen {
				t.Fatalf("CAS accepted key of length %d", len(req.key))
			}
			if len(req.old) == 0 || req.val == nil {
				t.Fatalf("CAS accepted bad operands %+v", req)
			}
			if bytes.ContainsRune(req.old, ' ') {
				t.Fatalf("CAS old value %q contains a space; old must be a single token", req.old)
			}
		case opGetV, opLease:
			if len(req.key) == 0 || len(req.key) > maxKeyLen {
				t.Fatalf("%s accepted key of length %d", req.op, len(req.key))
			}
			if req.val != nil || req.old != nil {
				t.Fatalf("%s parsed with value operands %+v", req.op, req)
			}
		case opSetV:
			if len(req.key) == 0 || len(req.key) > maxKeyLen || req.val == nil {
				t.Fatalf("SETV accepted bad operands %+v", req)
			}
			if req.ttl < 0 {
				t.Fatalf("SETV accepted negative ttl %v", req.ttl)
			}
		case opSetLease:
			if len(req.key) == 0 || len(req.key) > maxKeyLen || req.val == nil {
				t.Fatalf("SETL accepted bad operands %+v", req)
			}
			if req.ver == 0 {
				t.Fatal("SETL accepted the zero lease token, which is never granted")
			}
			if req.ttl < 0 {
				t.Fatalf("SETL accepted negative ttl %v", req.ttl)
			}
		case opReplSet:
			if len(req.key) == 0 || len(req.key) > maxKeyLen || req.val == nil {
				t.Fatalf("REPLSET accepted bad operands %+v", req)
			}
			if req.ver == 0 {
				t.Fatal("REPLSET accepted version 0, reserved for absent entries")
			}
			if req.delta < 0 {
				t.Fatalf("REPLSET accepted negative absolute expiry %d", req.delta)
			}
		case opReplDel:
			if len(req.key) == 0 || len(req.key) > maxKeyLen {
				t.Fatalf("REPLDEL accepted key of length %d", len(req.key))
			}
			if req.ver == 0 {
				t.Fatal("REPLDEL accepted version 0, reserved for absent entries")
			}
			if req.val != nil || req.old != nil {
				t.Fatalf("REPLDEL parsed with value operands %+v", req)
			}
		case opHandoff:
			if req.payload == 0 || req.payload > handoffMaxBytes {
				t.Fatalf("HANDOFF accepted payload length %d", req.payload)
			}
		case opMigrate:
			m := req.mig
			if m == nil {
				t.Fatal("MIGRATE parsed without args")
			}
			if m.mode != "home" && m.mode != "shed" {
				t.Fatalf("MIGRATE accepted mode %q", m.mode)
			}
			if m.dest == "" || m.self == "" || m.ring == "" || m.max < 0 {
				t.Fatalf("MIGRATE accepted bad operands %+v", *m)
			}
		default:
			t.Fatalf("parser returned unknown op %d", req.op)
		}
		// A TRACE prefix is accepted only within the codec's ID bounds.
		if req.trace != nil && (len(req.trace) == 0 || len(req.trace) > maxTraceIDLen) {
			t.Fatalf("TRACE accepted id of length %d", len(req.trace))
		}
		// Zero-copy contract: accepted keys, values and trace IDs are byte
		// ranges of the input line, so their content must appear in it
		// verbatim.
		for _, b := range [][]byte{req.key, req.val, req.old, req.trace} {
			if len(b) > 0 && !bytes.Contains(line, b) {
				t.Fatalf("operand %q not present in input line %q", b, line)
			}
		}
	})
}
