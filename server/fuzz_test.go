package server

import (
	"bytes"
	"testing"
	"time"
)

// FuzzParseCommand throws arbitrary request lines at the text-protocol
// parser and checks its invariants rather than exact outputs:
//
//   - it never panics (the implicit property of any fuzz target);
//   - a parse error never coexists with a usable request, and vice versa;
//   - whatever it accepts respects the protocol's own bounds (key length,
//     TTL positivity, HANDOFF payload bounds, MIGRATE operand count);
//   - key/val always alias the input line, never copies with different
//     content (conn.go depends on aliasing for its zero-copy fast path).
//
// Run via `make fuzz` or `go test -fuzz FuzzParseCommand ./server/`.
func FuzzParseCommand(f *testing.F) {
	seeds := []string{
		"GET k",
		"SET k v",
		"SET k value with spaces",
		"SETEX k 1500 v",
		"DEL k",
		"TTL k",
		"STATS",
		"QUIT",
		"CLUSTER",
		"HANDOFF 1024",
		"HANDOFF 67108865",
		"MIGRATE shed 127.0.0.1:2 127.0.0.1:1 42 0 127.0.0.1:1,127.0.0.1:2",
		"MIGRATE home b a 18446744073709551615 4294967295 a,b",
		"get lower",
		"SET " + string(bytes.Repeat([]byte("k"), 251)) + " v",
		"",
		" ",
		"\x00\xff",
		"SET k\x00 v",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		if bytes.ContainsAny(line, "\r\n") {
			// readLine strips line terminators before parseRequest ever
			// sees the bytes; embedded ones cannot occur.
			return
		}
		req, err := parseRequest(line)
		if err != nil {
			if req.op != 0 || req.key != nil || req.val != nil || req.mig != nil || req.payload != 0 {
				t.Fatalf("error %v returned alongside non-zero request %+v", err, req)
			}
			return
		}
		switch req.op {
		case opGet, opDel, opTTL:
			if len(req.key) == 0 || len(req.key) > maxKeyLen {
				t.Fatalf("%s accepted key of length %d", req.op, len(req.key))
			}
		case opSet:
			if len(req.key) == 0 || len(req.key) > maxKeyLen || req.val == nil {
				t.Fatalf("SET accepted bad operands %+v", req)
			}
		case opSetEx:
			if len(req.key) == 0 || len(req.key) > maxKeyLen || req.val == nil {
				t.Fatalf("SETEX accepted bad operands %+v", req)
			}
			if req.ttl < time.Millisecond {
				t.Fatalf("SETEX accepted non-positive ttl %v", req.ttl)
			}
		case opStats, opQuit, opCluster:
			// No operands to validate.
		case opHandoff:
			if req.payload == 0 || req.payload > handoffMaxBytes {
				t.Fatalf("HANDOFF accepted payload length %d", req.payload)
			}
		case opMigrate:
			m := req.mig
			if m == nil {
				t.Fatal("MIGRATE parsed without args")
			}
			if m.mode != "home" && m.mode != "shed" {
				t.Fatalf("MIGRATE accepted mode %q", m.mode)
			}
			if m.dest == "" || m.self == "" || m.ring == "" || m.max < 0 {
				t.Fatalf("MIGRATE accepted bad operands %+v", *m)
			}
		default:
			t.Fatalf("parser returned unknown op %d", req.op)
		}
		// Zero-copy contract: accepted keys and values are byte ranges of
		// the input line, so their content must appear in it verbatim.
		for _, b := range [][]byte{req.key, req.val} {
			if len(b) > 0 && !bytes.Contains(line, b) {
				t.Fatalf("operand %q not present in input line %q", b, line)
			}
		}
	})
}
