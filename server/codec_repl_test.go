package server

import (
	"bufio"
	"bytes"
	"testing"
)

// TestReplReplyWireFormat pins the exact byte sequences the replication
// and lease reply writers emit. client.readReply parses these strings
// verbatim (client/replica_codec_test.go round-trips them through a real
// Conn), so any drift here is a cross-package protocol break.
func TestReplReplyWireFormat(t *testing.T) {
	cases := []struct {
		name  string
		emit  func(w *bufio.Writer)
		wants string
	}{
		{"valuev", func(w *bufio.Writer) { writeValueV(w, 42, "hello world") }, "VALUEV 42 hello world\n"},
		{"valuev-empty", func(w *bufio.Writer) { writeValueV(w, 7, "") }, "VALUEV 7 \n"},
		{"valuev-maxver", func(w *bufio.Writer) { writeValueV(w, ^uint64(0), "v") }, "VALUEV 18446744073709551615 v\n"},
		{"ver", func(w *bufio.Writer) { writeVer(w, 9) }, "VER 9\n"},
		{"lease", func(w *bufio.Writer) { writeLease(w, 0xdeadbeef, 2000) }, "LEASE deadbeef 2000\n"},
		{"lease-maxtoken", func(w *bufio.Writer) { writeLease(w, ^uint64(0), 1) }, "LEASE ffffffffffffffff 1\n"},
		{"wait", func(w *bufio.Writer) { writeWait(w, 20) }, "WAIT 20\n"},
		{"stale-value", func(w *bufio.Writer) { writeStaleValue(w, 5, "old value") }, "STALE 5 old value\n"},
		{"stale-bare", writeStale, "STALE\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			w := bufio.NewWriter(&buf)
			tc.emit(w)
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			if got := buf.String(); got != tc.wants {
				t.Fatalf("wire bytes = %q, want %q", got, tc.wants)
			}
		})
	}
}
