package server

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"cuckoohash/internal/obs"
)

// scrape runs the server's collector through a registry and returns the
// exposition text, exactly as the admin endpoint would serve it.
func scrape(t *testing.T, s *Server) string {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Register(s)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCollectSeriesPresent(t *testing.T) {
	s := startServer(t, Config{Shards: 2, SlotsPerShard: 1 << 10})
	c := dialRaw(t, s)
	if got := c.roundTrip("SET k v"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}
	if got := c.roundTrip("GET k"); got != "VALUE v" {
		t.Fatalf("GET = %q", got)
	}
	if got := c.roundTrip("GET absent"); got != "MISS" {
		t.Fatalf("GET = %q", got)
	}

	text := scrape(t, s)
	for _, want := range []string{
		"cuckood_gets_total 2",
		"cuckood_hits_total 1",
		"cuckood_misses_total 1",
		"cuckood_sets_total 1",
		"cuckood_evictions_total 0",
		`cuckood_shard_entries{shard="0"}`,
		`cuckood_shard_entries{shard="1"}`,
		"cuckood_request_duration_seconds_bucket",
		"cuckood_request_duration_seconds_count",
		"cuckoo_table_searches_total",
		"cuckoo_table_path_restarts_total",
		"cuckoo_table_path_length_bucket",
		"cuckoo_lock_acquisitions_total",
		"cuckoo_lock_contended_total",
		"cuckood_accept_retries_total 0",
		"cuckood_connections_shed_total 0",
		"cuckood_busy_rejections_total 0",
		"cuckood_idle_closes_total 0",
		"cuckood_io_timeouts_total 0",
		"cuckood_snapshot_saves_total 0",
		"cuckood_snapshot_loads_total 0",
		"cuckood_snapshot_last_save_seconds 0",
		"cuckood_snapshot_last_load_seconds 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestScrapeWhileServing hammers the cache from several connections while
// concurrently scraping metrics, STATS snapshots, and the expvar snapshot.
// Run with -race this proves every probe counter is read and written with
// proper synchronization.
func TestScrapeWhileServing(t *testing.T) {
	s := startServer(t, Config{Shards: 2, SlotsPerShard: 1 << 10, SweepInterval: time.Millisecond})

	const workers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dialRaw(t, s)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d-%d", w, i%512)
				if got := c.roundTrip("SETEX " + key + " 5 v"); got != "OK" && !strings.HasPrefix(got, "ERR") {
					t.Errorf("SETEX = %q", got)
					return
				}
				c.roundTrip("GET " + key)
				if i%16 == 0 {
					c.roundTrip("DEL " + key)
				}
			}
		}(w)
	}

	reg := obs.NewRegistry()
	reg.Register(s)
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		var b strings.Builder
		if err := reg.WriteText(&b); err != nil {
			t.Error(err)
			break
		}
		_ = s.ExpvarSnapshot()
		_ = s.cache.Snapshot(s.cache.stats)
	}
	close(stop)
	wg.Wait()

	if got := scrape(t, s); !strings.Contains(got, "cuckood_sets_total") {
		t.Errorf("final scrape missing series:\n%s", got)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

func TestSlowOpLogged(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	// 1ns threshold: every sampled request qualifies as slow.
	s := startServer(t, Config{SlowOpThreshold: time.Nanosecond, Logger: logger})
	c := dialRaw(t, s)

	// Request 0 of a connection is always sampled (latencySampleMask).
	if got := c.roundTrip("SET slowkey v"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		out := buf.String()
		if strings.Contains(out, "slow request") {
			if !strings.Contains(out, "op=SET") || !strings.Contains(out, "key=slowkey") {
				t.Fatalf("slow-request log missing op/key attribution:\n%s", out)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no slow-request log after SET over threshold; log:\n%s", out)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := s.cache.stats.slowOps.Load(); n == 0 {
		t.Error("slowOps counter did not increment")
	}
	if got := scrape(t, s); !strings.Contains(got, "cuckood_slow_requests_total") {
		t.Error("scrape missing cuckood_slow_requests_total")
	}
}

func TestSlowOpDisabledByDefault(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s := startServer(t, Config{Logger: logger})
	c := dialRaw(t, s)
	if got := c.roundTrip("SET k v"); got != "OK" {
		t.Fatalf("SET = %q", got)
	}
	if strings.Contains(buf.String(), "slow request") {
		t.Errorf("slow-request log emitted with tracing disabled:\n%s", buf.String())
	}
	if n := s.cache.stats.slowOps.Load(); n != 0 {
		t.Errorf("slowOps = %d with tracing disabled", n)
	}
}

func TestStatsVerbIncludesTableInternals(t *testing.T) {
	s := startServer(t, Config{Shards: 1, SlotsPerShard: 1 << 10})
	c := dialRaw(t, s)
	for i := 0; i < 64; i++ {
		if got := c.roundTrip(fmt.Sprintf("SET key%d v", i)); got != "OK" {
			t.Fatalf("SET = %q", got)
		}
	}
	c.send("STATS\n")
	seen := map[string]bool{}
	for {
		line := c.readLine()
		if line == "END" {
			break
		}
		name, _, _ := strings.Cut(strings.TrimPrefix(line, "STAT "), " ")
		seen[name] = true
	}
	for _, want := range []string{
		"table_searches", "table_displacements", "table_path_restarts",
		"table_max_path_len", "table_grows",
		"lock_acquisitions", "lock_contended", "lock_yields",
		"slow_ops", "sweeps",
	} {
		if !seen[want] {
			t.Errorf("STATS missing %q", want)
		}
	}
}
