package server

import (
	"bufio"
	"io"
	"testing"
)

// TestGetWirePathZeroAlloc proves the steady-state GET path — wire parse,
// dispatch, byte-key probe, reply — allocation-free end to end, hit and
// miss alike. This is the dynamic counterpart of the static allocfree
// proof over the //cuckoo:hotpath roots (parseRequest, dispatchFast,
// GetBytesTraced, generic.GetBytes, writeValue).
func TestGetWirePathZeroAlloc(t *testing.T) {
	c, err := NewCache(4, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set("hot", "value-1", 0); err != nil {
		t.Fatal(err)
	}
	s := &Server{cache: c}
	var cs connState
	w := bufio.NewWriter(io.Discard)

	for _, tc := range []struct {
		name string
		line string
	}{
		{"hit", "GET hot"},
		{"miss", "GET absent"},
	} {
		line := []byte(tc.line)
		allocs := testing.AllocsPerRun(500, func() {
			req, err := parseRequest(line)
			if err != nil {
				panic(err)
			}
			if !s.dispatchFast(req, w, &cs) {
				panic("GET not handled by the fast dispatch")
			}
			w.Reset(io.Discard)
		})
		if allocs != 0 {
			t.Errorf("GET %s wire round trip: %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestSetWirePathAllocBound pins the SET path to its two inherent
// allocations: the stored key and value must be copied out of the
// connection read buffer, and nothing else on the steady-state
// overwrite path may allocate.
func TestSetWirePathAllocBound(t *testing.T) {
	c, err := NewCache(4, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{cache: c}
	var cs connState
	w := bufio.NewWriter(io.Discard)
	line := []byte("SET hot value-1")

	allocs := testing.AllocsPerRun(500, func() {
		req, err := parseRequest(line)
		if err != nil {
			panic(err)
		}
		if !s.dispatchFast(req, w, &cs) {
			panic("SET not handled by the fast dispatch")
		}
		w.Reset(io.Discard)
	})
	if allocs > 2 {
		t.Errorf("SET wire round trip: %.1f allocs/op, want <= 2 (stored key + value)", allocs)
	}
}
