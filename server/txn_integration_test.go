package server

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cuckoohash/internal/txn"
)

// Wire-level coverage for the transaction verbs (docs/TRANSACTIONS.md):
// the commutative counters (INCR/DECR/ADD/MAXUPDATE), CAS, and the
// MULTI…EXEC/DISCARD queue, exercised through a real TCP connection so
// parsing, dispatch, and reply rendering are all on the hook.

func TestCounterVerbs(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	cases := []struct{ req, want string }{
		{"INCR n", "OK"},     // missing key starts at 0
		{"GET n", "VALUE 1"}, // default delta is 1
		{"INCR n 41", "OK"},
		{"GET n", "VALUE 42"},
		{"DECR n 2", "OK"},
		{"GET n", "VALUE 40"},
		{"ADD n -40", "OK"},
		{"GET n", "VALUE 0"},
		{"MAXUPDATE m 7", "OK"}, // missing key: max(0, 7)
		{"GET m", "VALUE 7"},
		{"MAXUPDATE m 3", "OK"}, // lower operand is a no-op
		{"GET m", "VALUE 7"},
		{"SET s hello", "OK"},
		{"GET s", "VALUE hello"},
		{"ADD", "ERR wrong number of arguments"}, // operand required for ADD/MAXUPDATE
		{"ADD k", "ERR wrong number of arguments"},
		{"INCR n zebra", "ERR delta must be a signed 64-bit integer"},
		{"INCR n 1 2", "ERR wrong number of arguments"},
	}
	for _, tc := range cases {
		if got := c.roundTrip(tc.req); got != tc.want {
			t.Errorf("%s: got %q, want %q", tc.req, got, tc.want)
		}
	}
	// INCR against a non-integer value is a type error, not silent garbage.
	if got := c.roundTrip("INCR s"); !strings.HasPrefix(got, "ERR") {
		t.Errorf("INCR on non-integer: got %q, want ERR", got)
	}
}

func TestCounterTTLPreserved(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	if got := c.roundTrip("SETEX n 60000 5"); got != "OK" {
		t.Fatalf("SETEX: %q", got)
	}
	if got := c.roundTrip("INCR n"); got != "OK" {
		t.Fatalf("INCR: %q", got)
	}
	if got := c.roundTrip("GET n"); got != "VALUE 6" {
		t.Fatalf("GET: %q", got)
	}
	// The increment must not have turned the entry persistent.
	ttl := c.roundTrip("TTL n")
	if !strings.HasPrefix(ttl, "TTL ") || ttl == "TTL -1" {
		t.Fatalf("TTL after INCR: got %q, want a finite TTL", ttl)
	}
}

func TestCASVerb(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	cases := []struct{ req, want string }{
		{"CAS k old new", "MISS"}, // no entry: nothing to compare
		{"SET k old", "OK"},
		{"CAS k wrong new", "CONFLICT"},
		{"GET k", "VALUE old"},
		{"CAS k old brave new world", "OK"}, // new value is the rest of the line
		{"GET k", "VALUE brave new world"},
		{"CAS k", "ERR wrong number of arguments"},
		{"CAS k a", "ERR wrong number of arguments"},
	}
	for _, tc := range cases {
		if got := c.roundTrip(tc.req); got != tc.want {
			t.Errorf("%s: got %q, want %q", tc.req, got, tc.want)
		}
	}
}

func TestMultiExec(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	if got := c.roundTrip("SET bal 100"); got != "OK" {
		t.Fatalf("SET: %q", got)
	}
	steps := []struct{ req, want string }{
		{"MULTI", "OK"},
		{"MULTI", "ERR MULTI calls cannot be nested"},
		{"INCR bal 5", "QUEUED"},
		{"GET bal", "QUEUED"},
		{"SET note hi", "QUEUED"},
		{"DEL missing", "QUEUED"},
	}
	for _, tc := range steps {
		if got := c.roundTrip(tc.req); got != tc.want {
			t.Fatalf("%s: got %q, want %q", tc.req, got, tc.want)
		}
	}
	if got := c.roundTrip("EXEC"); got != "EXEC 4" {
		t.Fatalf("EXEC header: got %q, want \"EXEC 4\"", got)
	}
	for i, want := range []string{"OK", "VALUE 105", "OK", "MISS"} {
		if got := c.readLine(); got != want {
			t.Fatalf("EXEC result %d: got %q, want %q", i, got, want)
		}
	}
	// The transaction's writes are visible afterwards, and the queue state
	// is gone: a bare EXEC now fails.
	if got := c.roundTrip("GET note"); got != "VALUE hi" {
		t.Fatalf("GET after EXEC: %q", got)
	}
	if got := c.roundTrip("EXEC"); got != "ERR no MULTI in progress" {
		t.Fatalf("bare EXEC: %q", got)
	}
}

func TestMultiDiscard(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	for _, tc := range []struct{ req, want string }{
		{"DISCARD", "ERR no MULTI in progress"},
		{"MULTI", "OK"},
		{"SET k discarded", "QUEUED"},
		{"DISCARD", "OK"},
		{"GET k", "MISS"}, // the queued SET never ran
	} {
		if got := c.roundTrip(tc.req); got != tc.want {
			t.Errorf("%s: got %q, want %q", tc.req, got, tc.want)
		}
	}
}

func TestMultiPoisonedByBadOp(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	for _, tc := range []struct{ req, want string }{
		{"MULTI", "OK"},
		{"SET k v", "QUEUED"},
		{"INCR k zebra", "ERR delta must be a signed 64-bit integer"}, // queue-time parse error poisons
		{"SET k2 v2", "ERR transaction aborted by a queue-time error"},
	} {
		if got := c.roundTrip(tc.req); got != tc.want {
			t.Fatalf("%s: got %q, want %q", tc.req, got, tc.want)
		}
	}
	if got := c.roundTrip("EXEC"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("EXEC on poisoned txn: got %q, want ERR", got)
	}
	// Nothing from the partial queue was applied, and the connection is
	// usable again.
	if got := c.roundTrip("GET k"); got != "MISS" {
		t.Fatalf("GET after poisoned EXEC: %q", got)
	}
	if got := c.roundTrip("SET k fresh"); got != "OK" {
		t.Fatalf("SET after poisoned EXEC: %q", got)
	}
}

func TestMultiRejectsAdminVerbs(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	if got := c.roundTrip("MULTI"); got != "OK" {
		t.Fatalf("MULTI: %q", got)
	}
	if got := c.roundTrip("STATS"); got != "ERR command is not allowed inside MULTI" {
		t.Fatalf("STATS in MULTI: %q", got)
	}
	if got := c.roundTrip("EXEC"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("EXEC after admin verb: got %q, want ERR", got)
	}
}

func TestMultiQueueBounded(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	if got := c.roundTrip("MULTI"); got != "OK" {
		t.Fatalf("MULTI: %q", got)
	}
	for i := 0; i < maxTxnOps; i++ {
		if got := c.roundTrip(fmt.Sprintf("INCR k%d", i)); got != "QUEUED" {
			t.Fatalf("op %d: %q", i, got)
		}
	}
	if got := c.roundTrip("INCR overflow"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("op past the cap: got %q, want ERR", got)
	}
	if got := c.roundTrip("EXEC"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("EXEC on over-long txn: got %q, want ERR", got)
	}
}

func TestMultiCASConflictAbortsNothing(t *testing.T) {
	s := startServer(t, Config{})
	c := dialRaw(t, s)

	// A CAS conflict inside EXEC reports CONFLICT for that op; the other
	// ops still apply (per-op results, not all-or-nothing semantics — the
	// atomicity guarantee is isolation, docs/TRANSACTIONS.md).
	for _, tc := range []struct{ req, want string }{
		{"SET k actual", "OK"},
		{"MULTI", "OK"},
		{"CAS k expected new", "QUEUED"},
		{"INCR n 9", "QUEUED"},
	} {
		if got := c.roundTrip(tc.req); got != tc.want {
			t.Fatalf("%s: got %q, want %q", tc.req, got, tc.want)
		}
	}
	if got := c.roundTrip("EXEC"); got != "EXEC 2" {
		t.Fatalf("EXEC header: %q", got)
	}
	if got := c.readLine(); got != "CONFLICT" {
		t.Fatalf("CAS result: %q", got)
	}
	if got := c.readLine(); got != "OK" {
		t.Fatalf("INCR result: %q", got)
	}
	if got := c.roundTrip("GET n"); got != "VALUE 9" {
		t.Fatalf("GET n: %q", got)
	}
}

func TestTxnStatsExposed(t *testing.T) {
	s := startServer(t, Config{TxnPhaseInterval: 10 * time.Millisecond})
	c := dialRaw(t, s)

	for i := 0; i < 5; i++ {
		if got := c.roundTrip("INCR hot"); got != "OK" {
			t.Fatalf("INCR: %q", got)
		}
	}
	c.send("MULTI\nINCR hot\nEXEC\n")
	for _, want := range []string{"OK", "QUEUED", "EXEC 1", "OK"} {
		if got := c.readLine(); got != want {
			t.Fatalf("txn step: got %q, want %q", got, want)
		}
	}

	stats := map[string]string{}
	c.send("STATS\n")
	for {
		line := c.readLine()
		if line == "END" {
			break
		}
		parts := strings.SplitN(line, " ", 3)
		if len(parts) == 3 && parts[0] == "STAT" {
			stats[parts[1]] = parts[2]
		}
	}
	for _, key := range []string{
		"incrs", "cas_ops", "txn_commits", "txn_aborts", "txn_fallbacks",
		"txn_cas_conflicts", "txn_split_ops", "txn_split_reconciles",
		"txn_split_promotions", "txn_split_demotions", "txn_hot_keys",
	} {
		if _, ok := stats[key]; !ok {
			t.Errorf("STATS missing %q", key)
		}
	}
	if stats["incrs"] == "0" {
		t.Errorf("incrs = 0 after 5 INCRs")
	}
	if stats["txn_commits"] == "0" {
		t.Errorf("txn_commits = 0 after one EXEC")
	}
}

// TestExecEvictsOnFullCache pins the full-cache repair contract: the
// commit itself cannot evict while holding the transaction's stripes, so
// a write that finds its shard full is re-applied afterwards on the
// direct evict-and-retry path (safe: SET is blind, INCR/MAXUPDATE are
// commutative) — transactional writes on fresh keys succeed like direct
// ones instead of erroring with "shard full".
func TestExecEvictsOnFullCache(t *testing.T) {
	c, err := NewCache(1, 1<<8)
	if err != nil {
		t.Fatal(err)
	}
	// Fill to capacity: Set's own evict-retry keeps every insert landing.
	for i := uint64(0); i < c.Cap(); i++ {
		if err := c.Set(fmt.Sprintf("fill%d", i), "x", 0); err != nil {
			t.Fatalf("fill Set %d: %v", i, err)
		}
	}
	if free := c.Cap() - c.Len(); free > 8 {
		t.Fatalf("cache not full: %d free of %d", free, c.Cap())
	}
	evicted := c.Stats().evictions.Total()
	res := c.Exec([]txn.Op{
		{Kind: txn.OpIncr, Key: "fresh-counter", Delta: 7},
		{Kind: txn.OpSet, Key: "fresh-value", Val: "v"},
	})
	for i, r := range res {
		if r.Status != txn.StatusOK {
			t.Fatalf("op %d on full cache: status %d err %q", i, r.Status, r.Err)
		}
	}
	if got := c.Stats().evictions.Total(); got <= evicted {
		t.Errorf("expected pre-evictions, counter stayed at %d", got)
	}
	if v, ok := c.Get("fresh-counter"); !ok || v != "7" {
		t.Errorf("fresh-counter = %q, %v; want \"7\", true", v, ok)
	}
	if v, ok := c.Get("fresh-value"); !ok || v != "v" {
		t.Errorf("fresh-value = %q, %v; want \"v\", true", v, ok)
	}
}
